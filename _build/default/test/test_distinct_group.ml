(* Footnote 2 extension: SELECT DISTINCT and GROUP BY answer each other. *)

open Helpers

let star_db =
  lazy
    (Engine.Db.of_tables
       (Workload.Star_schema.catalog ())
       (Workload.Star_schema.generate
          {
            Workload.Star_schema.default_params with
            n_custs = 3;
            trans_per_acct_year = 20;
          }))

let expect ~rewrite ~query ~ast () =
  let db = Lazy.force star_db in
  let rewritten, equal = rewrite_check db ~query ~ast in
  Alcotest.(check bool) "rewrite decision" rewrite rewritten;
  if rewritten then Alcotest.(check bool) "results equal" true equal

let test_distinct_from_group () =
  expect ~rewrite:true
    ~query:"select distinct flid, faid from Trans"
    ~ast:"select flid, faid, count(*) as c from Trans group by flid, faid"
    ()

let test_distinct_from_group_with_filter () =
  expect ~rewrite:true
    ~query:"select distinct flid from Trans where flid > 5"
    ~ast:"select flid, count(*) as c from Trans group by flid"
    ()

let test_distinct_subset_of_keys_rejected () =
  (* projecting a strict subset of the grouping set re-introduces
     duplicates the summary cannot account for *)
  expect ~rewrite:false
    ~query:"select distinct flid from Trans"
    ~ast:"select flid, faid, count(*) as c from Trans group by flid, faid"
    ()

let test_distinct_filter_on_nonkey_rejected () =
  expect ~rewrite:false
    ~query:"select distinct flid from Trans where qty > 2"
    ~ast:"select flid, count(*) as c from Trans group by flid"
    ()

let test_keys_only_group_from_distinct () =
  expect ~rewrite:true
    ~query:"select distinct flid, faid from Trans"
    ~ast:"select distinct faid, flid from Trans"
    ()

let test_group_no_aggs_from_distinct () =
  (* GROUP BY with no aggregate outputs = DISTINCT *)
  let db = Lazy.force star_db in
  let rewritten, equal =
    rewrite_check db
      ~query:"select flid, faid from Trans group by flid, faid"
      ~ast:"select distinct flid, faid from Trans"
  in
  Alcotest.(check bool) "rewrite decision" true rewritten;
  Alcotest.(check bool) "results equal" true equal

let test_group_with_aggs_from_distinct_rejected () =
  expect ~rewrite:false
    ~query:"select flid, count(*) as c from Trans group by flid"
    ~ast:"select distinct flid from Trans"
    ()

let suite =
  [
    Alcotest.test_case "distinct from group" `Quick test_distinct_from_group;
    Alcotest.test_case "distinct from group + filter" `Quick
      test_distinct_from_group_with_filter;
    Alcotest.test_case "subset projection rejected" `Quick
      test_distinct_subset_of_keys_rejected;
    Alcotest.test_case "non-key filter rejected" `Quick
      test_distinct_filter_on_nonkey_rejected;
    Alcotest.test_case "distinct from distinct" `Quick
      test_keys_only_group_from_distinct;
    Alcotest.test_case "keys-only group from distinct" `Quick
      test_group_no_aggs_from_distinct;
    Alcotest.test_case "aggregates need more than distinct" `Quick
      test_group_with_aggs_from_distinct_rejected;
  ]
