(* SQL value semantics: three-valued logic, numeric promotion, dates,
   ordering/hashing coherence. *)

module V = Data.Value

let check_v = Alcotest.(check string)
let vs v = V.to_string v

let test_3vl_comparisons () =
  check_v "null = x is null" "NULL" (vs (V.sql_eq V.Null (V.Int 1)));
  check_v "x = null is null" "NULL" (vs (V.sql_eq (V.Int 1) V.Null));
  check_v "1 = 1" "TRUE" (vs (V.sql_eq (V.Int 1) (V.Int 1)));
  check_v "1 = 1.0 numeric" "TRUE" (vs (V.sql_eq (V.Int 1) (V.Float 1.0)));
  check_v "1 < 2" "TRUE" (vs (V.sql_lt (V.Int 1) (V.Int 2)));
  check_v "2 <= 2" "TRUE" (vs (V.sql_le (V.Int 2) (V.Int 2)));
  check_v "'a' <> 'b'" "TRUE" (vs (V.sql_neq (V.Str "a") (V.Str "b")))

let test_kleene_logic () =
  let t = V.Bool true and f = V.Bool false and n = V.Null in
  check_v "T and N" "NULL" (vs (V.sql_and t n));
  check_v "F and N" "FALSE" (vs (V.sql_and f n));
  check_v "N and F" "FALSE" (vs (V.sql_and n f));
  check_v "T or N" "TRUE" (vs (V.sql_or t n));
  check_v "N or T" "TRUE" (vs (V.sql_or n t));
  check_v "F or N" "NULL" (vs (V.sql_or f n));
  check_v "not N" "NULL" (vs (V.sql_not n));
  check_v "not T" "FALSE" (vs (V.sql_not t))

let test_arithmetic () =
  check_v "int add" "3" (vs (V.add (V.Int 1) (V.Int 2)));
  check_v "promotion" "3.5" (vs (V.add (V.Int 1) (V.Float 2.5)));
  check_v "null propagates" "NULL" (vs (V.add V.Null (V.Int 2)));
  check_v "int division truncates" "2" (vs (V.div (V.Int 5) (V.Int 2)));
  check_v "float division" "2.5" (vs (V.div (V.Float 5.0) (V.Int 2)));
  check_v "negation" "-4" (vs (V.neg (V.Int 4)));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (V.div (V.Int 1) (V.Int 0)));
  Alcotest.check_raises "type error"
    (V.Type_error "+ applied to non-numeric value") (fun () ->
      ignore (V.add (V.Str "a") (V.Int 1)))

let test_dates () =
  let dt = V.date 1994 7 15 in
  check_v "date text" "1994-07-15" (vs dt);
  check_v "year" "1994" (vs (V.year dt));
  check_v "month" "7" (vs (V.month dt));
  check_v "day" "15" (vs (V.day dt));
  check_v "year of null" "NULL" (vs (V.year V.Null));
  Alcotest.check_raises "bad month"
    (Invalid_argument "Value.date: month out of range") (fun () ->
      ignore (V.date 1994 13 1));
  Alcotest.check_raises "bad day"
    (Invalid_argument "Value.date: day out of range") (fun () ->
      ignore (V.date 1994 1 0))

let test_order_and_hash () =
  Alcotest.(check int) "null first" (-1)
    (compare (V.compare V.Null (V.Int 0)) 0);
  Alcotest.(check int) "numeric cross-type equal" 0
    (V.compare (V.Int 3) (V.Float 3.0));
  Alcotest.(check bool) "equal implies same hash" true
    (V.hash (V.Int 3) = V.hash (V.Float 3.0));
  Alcotest.(check bool) "dates ordered" true
    (V.compare (V.date 1994 1 2) (V.date 1994 1 10) < 0)

let test_concat () =
  check_v "concat" "ab" (vs (V.concat (V.Str "a") (V.Str "b")));
  check_v "concat null" "NULL" (vs (V.concat (V.Str "a") V.Null))

let test_is_true () =
  Alcotest.(check bool) "true passes" true (V.is_true (V.Bool true));
  Alcotest.(check bool) "null fails" false (V.is_true V.Null);
  Alcotest.(check bool) "false fails" false (V.is_true (V.Bool false));
  Alcotest.(check bool) "non-bool fails" false (V.is_true (V.Int 1))

(* properties *)
let arb_value =
  QCheck.(
    oneof
      [
        always Data.Value.Null;
        map (fun n -> Data.Value.Int n) small_signed_int;
        map (fun x -> Data.Value.Float x) (float_range (-1e6) 1e6);
        map (fun s -> Data.Value.Str s) (string_of_size (Gen.return 3));
        map (fun b -> Data.Value.Bool b) bool;
        map
          (fun (y, m, d) -> Data.Value.date (1990 + y) (1 + m) (1 + d))
          (triple (int_bound 20) (int_bound 11) (int_bound 27));
      ])

let prop_compare_total =
  QCheck.Test.make ~name:"compare is antisymmetric"
    QCheck.(pair arb_value arb_value)
    (fun (a, b) ->
      let c1 = V.compare a b and c2 = V.compare b a in
      (c1 = 0 && c2 = 0) || (c1 > 0 && c2 < 0) || (c1 < 0 && c2 > 0))

let prop_compare_transitive =
  QCheck.Test.make ~name:"compare is transitive"
    QCheck.(triple arb_value arb_value arb_value)
    (fun (a, b, c) ->
      let ( <= ) x y = V.compare x y <= 0 in
      if a <= b && b <= c then a <= c else true)

let prop_equal_hash =
  QCheck.Test.make ~name:"equal values hash equally"
    QCheck.(pair arb_value arb_value)
    (fun (a, b) -> (not (V.equal a b)) || V.hash a = V.hash b)

let prop_eq_symmetric =
  QCheck.Test.make ~name:"sql_eq is symmetric"
    QCheck.(pair arb_value arb_value)
    (fun (a, b) -> V.sql_eq a b = V.sql_eq b a)

let suite =
  [
    Alcotest.test_case "3vl comparisons" `Quick test_3vl_comparisons;
    Alcotest.test_case "kleene logic" `Quick test_kleene_logic;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "dates" `Quick test_dates;
    Alcotest.test_case "order and hash" `Quick test_order_and_hash;
    Alcotest.test_case "concat" `Quick test_concat;
    Alcotest.test_case "is_true" `Quick test_is_true;
    QCheck_alcotest.to_alcotest prop_compare_total;
    QCheck_alcotest.to_alcotest prop_compare_transitive;
    QCheck_alcotest.to_alcotest prop_equal_hash;
    QCheck_alcotest.to_alcotest prop_eq_symmetric;
  ]
