(* The cardinality/cost model: estimates should track actual cardinalities
   within an order of magnitude on known shapes, and the routing decisions
   that depend on them must come out right. *)

module Cost = Astmatch.Cost
module G = Qgm.Graph
module R = Data.Relation
open Helpers

let star_db =
  lazy
    (Engine.Db.of_tables
       (Workload.Star_schema.catalog ())
       (Workload.Star_schema.generate
          {
            Workload.Star_schema.default_params with
            n_custs = 5;
            trans_per_acct_year = 50;
          }))

let estimate sql =
  let db = Lazy.force star_db in
  let cat = Engine.Db.catalog db in
  let g = build cat sql in
  (Cost.box_rows cat g (G.root g), float_of_int (R.cardinality (Engine.Exec.run db g)))

let within_factor f (est, actual) =
  est <= actual *. f && actual <= est *. f

let check_estimate ?(factor = 10.) sql =
  let est, actual = estimate sql in
  Alcotest.(check bool)
    (Printf.sprintf "%s: estimated %.0f vs actual %.0f" sql est actual)
    true
    (within_factor factor (est, Float.max 1. actual))

let test_scan () = check_estimate "select tid from Trans"

let test_key_join () =
  (* PK-FK join keeps the fact cardinality *)
  check_estimate "select tid from Trans, Loc where flid = lid"

let test_equality_filter () =
  check_estimate "select tid from Trans where qty = 3"

let test_group_by_low_card () =
  check_estimate "select flid, count(*) as c from Trans group by flid"

let test_group_by_compound () =
  check_estimate ~factor:30.
    "select flid, year(date) as y, count(*) as c from Trans, Loc where flid \
     = lid group by flid, year(date)"

let test_join_bigger_than_filter () =
  (* relative ordering matters more than absolute numbers *)
  let db = Lazy.force star_db in
  let cat = Engine.Db.catalog db in
  let big = build cat "select tid from Trans" in
  let small = build cat "select tid from Trans where qty = 3" in
  Alcotest.(check bool) "filter estimated smaller" true
    (Cost.box_rows cat small (G.root small)
    < Cost.box_rows cat big (G.root big))

let test_graph_cost_sanity () =
  let db = Lazy.force star_db in
  let cat = Engine.Db.catalog db in
  let qg = build cat "select flid, count(*) as c from Trans group by flid" in
  let cost = Cost.graph_cost cat qg in
  let scan = float_of_int (R.cardinality (Engine.Db.get_exn db "Trans")) in
  Alcotest.(check bool) "at least one scan of Trans" true (cost >= scan);
  (* a query over a pre-aggregated table of G groups must be much cheaper *)
  let mv = Engine.Exec.run db qg in
  let db2 = Engine.Db.put db "mv" mv in
  let cat2 =
    Catalog.add_table (Engine.Db.catalog db2)
      {
        Catalog.tbl_name = "mv";
        tbl_cols =
          [
            { Catalog.col_name = "flid"; col_ty = Data.Value.Tint; nullable = true };
            { Catalog.col_name = "c"; col_ty = Data.Value.Tint; nullable = true };
          ];
        primary_key = [];
        unique_keys = [];
        foreign_keys = [];
      }
  in
  let cat2 = Engine.Db.catalog (Engine.Db.put (Engine.Db.with_catalog db2 cat2) "mv" mv) in
  let qg2 = build cat2 "select flid, c from mv" in
  Alcotest.(check bool) "mv plan much cheaper" true
    (Cost.graph_cost cat2 qg2 *. 10. < cost)

let suite =
  [
    Alcotest.test_case "scan estimate" `Quick test_scan;
    Alcotest.test_case "key join estimate" `Quick test_key_join;
    Alcotest.test_case "equality filter" `Quick test_equality_filter;
    Alcotest.test_case "group by low cardinality" `Quick test_group_by_low_card;
    Alcotest.test_case "compound grouping" `Quick test_group_by_compound;
    Alcotest.test_case "relative ordering" `Quick test_join_bigger_than_filter;
    Alcotest.test_case "graph cost sanity" `Quick test_graph_cost_sanity;
  ]
