(* The summary-table advisor: clustering by join core, union of grouping
   needs, and the end-to-end guarantee that recommended summaries actually
   answer their cluster. *)

module Adv = Mvstore.Advisor
module Sess = Mvstore.Session

let workload =
  [
    "SELECT year(date) AS y, COUNT(*) AS c FROM Trans GROUP BY year(date)";
    "SELECT flid, SUM(qty) AS q FROM Trans GROUP BY flid";
    "SELECT flid, COUNT(*) AS c FROM Trans WHERE qty > 3 GROUP BY flid";
    "SELECT state, COUNT(*) AS c FROM Trans, Loc WHERE flid = lid GROUP BY state";
    "SELECT tid FROM Trans WHERE qty > 1";  (* not an aggregate: skipped *)
  ]

let recs () = Adv.recommend (Workload.Star_schema.catalog ()) workload

let test_clustering () =
  let rs = recs () in
  Alcotest.(check int) "two clusters" 2 (List.length rs);
  let sizes = List.map (fun r -> List.length r.Adv.rec_serves) rs in
  Alcotest.(check (list int)) "cluster sizes" [ 3; 1 ] sizes

let test_filters_add_grouping_columns () =
  let rs = recs () in
  let first = List.hd rs in
  (* qty appears only in a WHERE clause; it must become a grouping column so
     the filter can be re-applied above the summary *)
  let has needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "qty grouped" true (has "qty" first.Adv.rec_sql);
  Alcotest.(check bool) "count(*) always present" true
    (has "COUNT(*)" first.Adv.rec_sql)

let test_recommendations_answer_workload () =
  let tables =
    Workload.Star_schema.generate
      {
        Workload.Star_schema.default_params with
        n_custs = 3;
        trans_per_acct_year = 15;
      }
  in
  let sn = Sess.of_tables (Workload.Star_schema.catalog ()) tables in
  List.iter
    (fun (r : Adv.recommendation) ->
      ignore
        (Sess.exec_sql sn
           (Printf.sprintf "CREATE SUMMARY TABLE %s AS %s" r.rec_name r.rec_sql)))
    (recs ());
  List.iteri
    (fun idx sql ->
      let q = Sqlsyn.Parser.parse_query sql in
      Sess.set_rewrite sn false;
      let direct, _ = Sess.run_query sn q in
      Sess.set_rewrite sn true;
      let via, steps = Sess.run_query sn q in
      if idx < 4 then
        Alcotest.(check bool)
          (Printf.sprintf "query %d rewritten" idx)
          true (steps <> []);
      Alcotest.(check bool)
        (Printf.sprintf "query %d equal" idx)
        true
        (Data.Relation.bag_equal_approx direct via))
    workload

let test_empty_workload () =
  Alcotest.(check int) "no recs" 0
    (List.length (Adv.recommend Catalog.empty [ "SELECT a FROM t" ]))

let suite =
  [
    Alcotest.test_case "clustering" `Quick test_clustering;
    Alcotest.test_case "filters become grouping columns" `Quick
      test_filters_add_grouping_columns;
    Alcotest.test_case "recommendations answer workload" `Quick
      test_recommendations_answer_workload;
    Alcotest.test_case "empty workload" `Quick test_empty_workload;
  ]
