(* The statement driver: DDL/DML round trips, integrity enforcement,
   transparent rewriting, EXPLAIN. *)

module Sess = Mvstore.Session
module R = Data.Relation

let script session sql = Sess.exec_sql session sql

let last_table outcomes =
  match List.rev outcomes with
  | Sess.Table r :: _ -> r
  | _ -> Alcotest.fail "expected a result table"

let test_ddl_dml_query () =
  let sn = Sess.create () in
  let out =
    script sn
      "CREATE TABLE t (a INT NOT NULL, b VARCHAR); \
       INSERT INTO t VALUES (1, 'x'), (2, NULL); \
       INSERT INTO t (a) VALUES (3); \
       SELECT a, b FROM t ORDER BY a;"
  in
  let rel = last_table out in
  Alcotest.(check int) "three rows" 3 (R.cardinality rel);
  Alcotest.(check (list string)) "missing col is NULL"
    [ "3"; "NULL" ]
    (List.map Data.Value.to_string
       (Array.to_list (List.nth (R.rows rel) 2)))

let expect_err session sql =
  match script session sql with
  | exception Sess.Session_error _ -> ()
  | _ -> Alcotest.fail ("should fail: " ^ sql)

let test_integrity () =
  let sn = Sess.create () in
  ignore (script sn "CREATE TABLE t (a INT NOT NULL, b INT);");
  expect_err sn "INSERT INTO t (b) VALUES (1);";        (* a missing -> NULL *)
  expect_err sn "INSERT INTO t VALUES (NULL, 1);";
  expect_err sn "INSERT INTO t VALUES (1);";            (* arity *)
  expect_err sn "INSERT INTO t VALUES (1, 2, 3);";
  expect_err sn "INSERT INTO ghost VALUES (1);";
  expect_err sn "CREATE TABLE t (a INT);";              (* duplicate *)
  expect_err sn "SELECT ghost FROM t;"

let test_insert_expression_values () =
  let sn = Sess.create () in
  ignore (script sn "CREATE TABLE t (a INT NOT NULL, d DATE);");
  ignore (script sn "INSERT INTO t VALUES (1 + 2, DATE '1994-07-15');");
  let rel = last_table (script sn "SELECT a, year(d) AS y FROM t;") in
  Alcotest.(check (list string)) "computed" [ "3"; "1994" ]
    (List.map Data.Value.to_string (Array.to_list (List.hd (R.rows rel))))

let test_transparent_rewrite_and_toggle () =
  let sn = Sess.create () in
  ignore
    (script sn
       "CREATE TABLE t (g INT NOT NULL, v INT NOT NULL); \
        INSERT INTO t VALUES (1, 10), (1, 20), (2, 5); \
        CREATE SUMMARY TABLE m AS SELECT g, SUM(v) AS s, COUNT(*) AS c FROM \
        t GROUP BY g;");
  let q = Sqlsyn.Parser.parse_query "SELECT g, SUM(v) AS s FROM t GROUP BY g" in
  let _, steps = Sess.run_query sn q in
  Alcotest.(check bool) "rewritten" true (steps <> []);
  Sess.set_rewrite sn false;
  let direct, steps' = Sess.run_query sn q in
  Alcotest.(check bool) "toggle off" true (steps' = []);
  Sess.set_rewrite sn true;
  let via, _ = Sess.run_query sn q in
  Alcotest.(check bool) "equal either way" true (R.bag_equal_approx direct via)

let test_explain_reports () =
  let sn = Sess.create () in
  ignore
    (script sn
       "CREATE TABLE t (g INT NOT NULL, v INT NOT NULL); \
        INSERT INTO t VALUES (1, 10), (1, 20), (2, 5); \
        CREATE SUMMARY TABLE m AS SELECT g, SUM(v) AS s FROM t GROUP BY g;");
  match script sn "EXPLAIN REWRITE SELECT g, SUM(v) AS s FROM t GROUP BY g;" with
  | [ Sess.Plan p ] ->
      let has needle =
        let n = String.length needle and h = String.length p in
        let rec go i = i + n <= h && (String.sub p i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "mentions the MV" true (has "m");
      Alcotest.(check bool) "mentions rewritten SQL" true (has "rewritten SQL")
  | _ -> Alcotest.fail "expected a plan"

let test_summary_lifecycle () =
  let sn = Sess.create () in
  ignore
    (script sn
       "CREATE TABLE t (g INT NOT NULL, v INT NOT NULL); \
        INSERT INTO t VALUES (1, 10); \
        CREATE SUMMARY TABLE m AS SELECT g, SUM(v) AS s FROM t GROUP BY g \
        HAVING SUM(v) > 5;");
  (* non-incremental: insert -> stale -> not used *)
  ignore (script sn "INSERT INTO t VALUES (1, 10);");
  let q = Sqlsyn.Parser.parse_query "SELECT g, SUM(v) AS s FROM t GROUP BY g HAVING SUM(v) > 5" in
  let _, steps = Sess.run_query sn q in
  Alcotest.(check bool) "stale MV unused" true (steps = []);
  ignore (script sn "REFRESH SUMMARY TABLE m;");
  let rel, steps = Sess.run_query sn q in
  Alcotest.(check bool) "used after refresh" true (steps <> []);
  Alcotest.(check (list string)) "correct content" [ "1"; "20" ]
    (List.map Data.Value.to_string (Array.to_list (List.hd (R.rows rel))));
  ignore (script sn "DROP SUMMARY TABLE m;");
  expect_err sn "REFRESH SUMMARY TABLE m;"

let test_explain_diagnostics () =
  let sn = Sess.create () in
  ignore
    (script sn
       "CREATE TABLE t (g INT NOT NULL, v INT, p INT NOT NULL); \
        INSERT INTO t VALUES (1, 10, 3), (2, 5, 5); \
        CREATE SUMMARY TABLE m AS SELECT g, COUNT(*) AS c FROM t GROUP BY g;");
  let has hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  (match script sn "EXPLAIN REWRITE SELECT g, SUM(v) AS s FROM t GROUP BY g;" with
  | [ Sess.Plan p ] ->
      Alcotest.(check bool) "reports missing aggregate" true
        (has p "not preserved by the summary")
  | _ -> Alcotest.fail "expected plan");
  match
    script sn "EXPLAIN REWRITE SELECT g, COUNT(*) AS c FROM t WHERE p > 3 GROUP BY g;"
  with
  | [ Sess.Plan p ] ->
      Alcotest.(check bool) "reports underivable predicate" true
        (has p "not derivable from the summary")
  | _ -> Alcotest.fail "expected plan"

let test_queries_on_summary_directly () =
  let sn = Sess.create () in
  ignore
    (script sn
       "CREATE TABLE t (g INT NOT NULL, v INT NOT NULL); \
        INSERT INTO t VALUES (1, 10), (2, 20); \
        CREATE SUMMARY TABLE m AS SELECT g, SUM(v) AS s FROM t GROUP BY g;");
  let rel = last_table (script sn "SELECT g, s FROM m ORDER BY g;") in
  Alcotest.(check int) "summary queryable" 2 (R.cardinality rel)

let suite =
  [
    Alcotest.test_case "ddl/dml/query" `Quick test_ddl_dml_query;
    Alcotest.test_case "integrity" `Quick test_integrity;
    Alcotest.test_case "expression values" `Quick test_insert_expression_values;
    Alcotest.test_case "transparent rewrite toggle" `Quick
      test_transparent_rewrite_and_toggle;
    Alcotest.test_case "explain" `Quick test_explain_reports;
    Alcotest.test_case "summary lifecycle" `Quick test_summary_lifecycle;
    Alcotest.test_case "query summary directly" `Quick
      test_queries_on_summary_directly;
    Alcotest.test_case "explain diagnostics" `Quick test_explain_diagnostics;
  ]
