(* Lexer: token shapes, comments, literals, error positions. *)

module T = Sqlsyn.Token
module L = Sqlsyn.Lexer

let toks src = List.map fst (L.tokenize src)

let check_toks msg expected src =
  Alcotest.(check (list string))
    msg expected
    (List.map T.to_string (toks src))

let test_operators () =
  check_toks "comparison ops"
    [ "<"; "<="; ">"; ">="; "<>"; "<>"; "="; "||"; "<eof>" ]
    "< <= > >= <> != = ||"

let test_numbers () =
  (match toks "42 3.25 1e3" with
  | [ T.Int_lit 42; T.Float_lit 3.25; T.Int_lit 1; T.Ident "e3"; T.Eof ] -> ()
  | _ -> Alcotest.fail "number tokens");
  match toks "2.5e2" with
  | [ T.Float_lit 250.0; T.Eof ] -> ()
  | _ -> Alcotest.fail "exponent float"

let test_strings () =
  (match toks "'hello' 'it''s'" with
  | [ T.Str_lit "hello"; T.Str_lit "it's"; T.Eof ] -> ()
  | _ -> Alcotest.fail "string tokens");
  match L.tokenize "'unterminated" with
  | exception L.Lex_error (_, 0) -> ()
  | _ -> Alcotest.fail "expected lex error"

let test_comments () =
  check_toks "line comment" [ "a"; "b"; "<eof>" ] "a -- comment\nb";
  check_toks "block comment" [ "a"; "b"; "<eof>" ] "a /* x /* nested */ y */ b";
  match L.tokenize "/* open" with
  | exception L.Lex_error (_, _) -> ()
  | _ -> Alcotest.fail "unterminated block comment"

let test_idents_and_punct () =
  check_toks "qualified ref" [ "t"; "."; "col_1"; "<eof>" ] "t.col_1";
  check_toks "punct" [ "("; ")"; ","; ";"; "*"; "%"; "<eof>" ] "( ) , ; * %"

let test_positions () =
  let positions = List.map snd (L.tokenize "ab  cd") in
  Alcotest.(check (list int)) "byte offsets" [ 0; 4; 6 ] positions

let test_bad_char () =
  match L.tokenize "a ? b" with
  | exception L.Lex_error (_, 2) -> ()
  | _ -> Alcotest.fail "expected error at offset 2"

let suite =
  [
    Alcotest.test_case "operators" `Quick test_operators;
    Alcotest.test_case "numbers" `Quick test_numbers;
    Alcotest.test_case "strings" `Quick test_strings;
    Alcotest.test_case "comments" `Quick test_comments;
    Alcotest.test_case "identifiers and punctuation" `Quick test_idents_and_punct;
    Alcotest.test_case "positions" `Quick test_positions;
    Alcotest.test_case "bad character" `Quick test_bad_char;
  ]
