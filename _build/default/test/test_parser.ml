(* Parser: precedence, clause coverage, subqueries, supergroups, DDL/DML,
   error reporting, and print/parse round-tripping. *)

module A = Sqlsyn.Ast
module P = Sqlsyn.Parser
module Pr = Sqlsyn.Pretty

let roundtrip sql = Pr.query_to_string (P.parse_query sql)

let check_rt msg expected sql = Alcotest.(check string) msg expected (roundtrip sql)

let test_precedence () =
  check_rt "mul binds tighter" "SELECT a + b * c AS x FROM t"
    "select a + b * c as x from t";
  check_rt "parens preserved where needed" "SELECT (a + b) * c AS x FROM t"
    "select (a + b) * c as x from t";
  check_rt "and/or precedence" "SELECT 1 AS x FROM t WHERE a = 1 OR b = 2 AND c = 3"
    "select 1 as x from t where a = 1 or b = 2 and c = 3";
  check_rt "not" "SELECT 1 AS x FROM t WHERE NOT a = 1 AND b = 2"
    "select 1 as x from t where not a = 1 and b = 2"

let test_expressions () =
  check_rt "between" "SELECT 1 AS x FROM t WHERE a BETWEEN 1 AND 5"
    "select 1 as x from t where a between 1 and 5";
  check_rt "in list" "SELECT 1 AS x FROM t WHERE a IN (1, 2, 3)"
    "select 1 as x from t where a in (1,2,3)";
  check_rt "not in" "SELECT 1 AS x FROM t WHERE a NOT IN (1)"
    "select 1 as x from t where a not in (1)";
  check_rt "is null" "SELECT 1 AS x FROM t WHERE a IS NULL AND b IS NOT NULL"
    "select 1 as x from t where a is null and b is not null";
  check_rt "case" "SELECT CASE WHEN a = 1 THEN 'one' ELSE 'many' END AS x FROM t"
    "select case when a = 1 then 'one' else 'many' end as x from t";
  check_rt "unary minus" "SELECT -a AS x FROM t" "select -a as x from t";
  check_rt "date literal" "SELECT DATE '1994-07-15' AS x FROM t"
    "select date '1994-07-15' as x from t";
  check_rt "count distinct" "SELECT COUNT(DISTINCT a) AS c FROM t"
    "select count(distinct a) as c from t";
  check_rt "mod operator" "SELECT a % 100 AS x FROM t" "select a % 100 as x from t"

let test_joins () =
  check_rt "explicit join folded into where"
    "SELECT 1 AS x FROM a, b WHERE a.id = b.id"
    "select 1 as x from a join b on a.id = b.id";
  check_rt "cross join" "SELECT 1 AS x FROM a, b" "select 1 as x from a cross join b";
  match P.parse_query "select 1 as x from a left join b on a.id = b.id" with
  | exception P.Parse_error (m, _) ->
      Alcotest.(check bool) "outer join rejected" true
        (String.length m > 0)
  | _ -> Alcotest.fail "outer join should be rejected"

let test_subqueries () =
  check_rt "from subquery"
    "SELECT t.a AS a FROM (SELECT a FROM u) AS t"
    "select t.a as a from (select a from u) t";
  check_rt "scalar subquery"
    "SELECT a / (SELECT COUNT(*) FROM u) AS frac FROM t"
    "select a / (select count(*) from u) as frac from t"

let test_supergroups () =
  check_rt "rollup" "SELECT a FROM t GROUP BY ROLLUP(a, b)"
    "select a from t group by rollup(a, b)";
  check_rt "cube" "SELECT a FROM t GROUP BY CUBE(a, b)"
    "select a from t group by cube(a, b)";
  check_rt "grouping sets with empty set"
    "SELECT a FROM t GROUP BY GROUPING SETS((a, b), (a), ())"
    "select a from t group by grouping sets((a, b), a, ())";
  check_rt "mixed items" "SELECT a FROM t GROUP BY a, ROLLUP(b, c)"
    "select a from t group by a, rollup(b, c)"

let test_clauses () =
  check_rt "everything"
    "SELECT DISTINCT a, SUM(b) AS s FROM t WHERE c > 0 GROUP BY a HAVING \
     SUM(b) > 10 ORDER BY a, 2 DESC LIMIT 5"
    "select distinct a, sum(b) as s from t where c > 0 group by a having \
     sum(b) > 10 order by a asc, 2 desc limit 5"

let test_statements () =
  let script =
    "CREATE TABLE t (a INT NOT NULL PRIMARY KEY, b VARCHAR(20), UNIQUE (b), \
     FOREIGN KEY (b) REFERENCES u (name)); INSERT INTO t (a, b) VALUES (1, \
     'x'), (2, NULL); CREATE SUMMARY TABLE s AS SELECT a FROM t; DROP \
     SUMMARY TABLE s; REFRESH SUMMARY TABLE s; EXPLAIN REWRITE SELECT a FROM \
     t;"
  in
  let stmts = P.parse_script script in
  Alcotest.(check int) "statement count" 6 (List.length stmts);
  match stmts with
  | [
   A.Create_table { ct_cols; ct_constraints; _ };
   A.Insert { ins_rows; _ };
   A.Create_summary _;
   A.Drop_summary "s";
   A.Refresh_summary "s";
   A.Explain_rewrite _;
  ] ->
      Alcotest.(check int) "columns" 2 (List.length ct_cols);
      Alcotest.(check int) "constraints" 3 (List.length ct_constraints);
      Alcotest.(check int) "rows" 2 (List.length ins_rows)
  | _ -> Alcotest.fail "statement shapes"

let test_materialized_view_synonym () =
  match P.parse_stmt "CREATE MATERIALIZED VIEW v AS SELECT a FROM t" with
  | A.Create_summary { cs_name = "v"; _ } -> ()
  | _ -> Alcotest.fail "materialized view synonym"

let test_errors () =
  let expect_error sql =
    match P.parse_query sql with
    | exception P.Parse_error _ -> ()
    | _ -> Alcotest.fail ("should not parse: " ^ sql)
  in
  expect_error "select";
  expect_error "select a from";
  expect_error "select a from t where";
  expect_error "select a from t group by";
  expect_error "select a from t limit x";
  expect_error "select case end from t";
  expect_error "select a from t 42"

(* property: pretty-printing then re-parsing is a fixpoint *)
let arb_expr =
  let open QCheck in
  let leaf =
    Gen.oneof
      [
        Gen.map (fun n -> A.Lit (Data.Value.Int n)) Gen.small_int;
        Gen.map (fun c -> A.Ref (None, "c" ^ string_of_int c)) (Gen.int_bound 5);
        Gen.return (A.Lit (Data.Value.Str "s"));
      ]
  in
  let gen =
    Gen.sized (fun n ->
        let rec go n =
          if n <= 1 then leaf
          else
            Gen.oneof
              [
                leaf;
                Gen.map2
                  (fun a b -> A.Binop ("+", a, b))
                  (go (n / 2)) (go (n / 2));
                Gen.map2
                  (fun a b -> A.Binop ("*", a, b))
                  (go (n / 2)) (go (n / 2));
                Gen.map2
                  (fun a b -> A.Binop ("<", a, b))
                  (go (n / 2)) (go (n / 2));
                Gen.map (fun a -> A.Unop ("-", a)) (go (n - 1));
                Gen.map (fun a -> A.Is_null (a, true)) (go (n - 1));
              ]
        in
        go (min n 8))
  in
  QCheck.make ~print:Pr.expr_to_string gen

let prop_expr_roundtrip =
  QCheck.Test.make ~name:"expr print/parse fixpoint" ~count:200 arb_expr
    (fun e ->
      let printed = Pr.expr_to_string e in
      let reparsed = P.parse_expr printed in
      Pr.expr_to_string reparsed = printed)

let suite =
  [
    Alcotest.test_case "precedence" `Quick test_precedence;
    Alcotest.test_case "expressions" `Quick test_expressions;
    Alcotest.test_case "joins" `Quick test_joins;
    Alcotest.test_case "subqueries" `Quick test_subqueries;
    Alcotest.test_case "supergroups" `Quick test_supergroups;
    Alcotest.test_case "clause coverage" `Quick test_clauses;
    Alcotest.test_case "statements" `Quick test_statements;
    Alcotest.test_case "materialized view synonym" `Quick
      test_materialized_view_synonym;
    Alcotest.test_case "errors" `Quick test_errors;
    QCheck_alcotest.to_alcotest prop_expr_roundtrip;
  ]
