(* Relation container: schema discipline, bag operations, approximate
   equality. *)

module R = Data.Relation
module V = Data.Value
open Helpers

let mk () =
  R.create [ "a"; "b" ] [ [| i 1; s "x" |]; [| i 2; s "y" |]; [| i 1; s "x" |] ]

let test_create_checks_width () =
  Alcotest.check_raises "row width" (Invalid_argument
    "Relation.create: row width 1, schema width 2") (fun () ->
      ignore (R.create [ "a"; "b" ] [ [| i 1 |] ]))

let test_basics () =
  let r = mk () in
  Alcotest.(check int) "arity" 2 (R.arity r);
  Alcotest.(check int) "cardinality" 3 (R.cardinality r);
  Alcotest.(check int) "column index case-insensitive" 1 (R.column_index r "B");
  Alcotest.(check bool) "mem" true (R.mem_column r "A");
  Alcotest.(check bool) "not mem" false (R.mem_column r "z")

let test_project_reorders () =
  let r = R.project (mk ()) [ "b"; "a" ] in
  Alcotest.(check (list string)) "columns" [ "b"; "a" ]
    (Array.to_list (R.columns r));
  Alcotest.(check bool) "row content" true
    (List.hd (R.rows r) = [| s "x"; i 1 |])

let test_distinct () =
  let r = R.distinct (mk ()) in
  Alcotest.(check int) "dedup" 2 (R.cardinality r)

let test_distinct_null_grouping () =
  let r =
    R.distinct (R.create [ "a" ] [ [| V.Null |]; [| V.Null |]; [| i 1 |] ])
  in
  Alcotest.(check int) "nulls collapse" 2 (R.cardinality r)

let test_bag_equal () =
  let a = R.create [ "x" ] [ [| i 1 |]; [| i 2 |]; [| i 2 |] ] in
  let b = R.create [ "x" ] [ [| i 2 |]; [| i 1 |]; [| i 2 |] ] in
  let c = R.create [ "x" ] [ [| i 1 |]; [| i 2 |] ] in
  let d = R.create [ "x" ] [ [| i 1 |]; [| i 1 |]; [| i 2 |] ] in
  Alcotest.(check bool) "permuted bags equal" true (R.bag_equal a b);
  Alcotest.(check bool) "cardinality matters" false (R.bag_equal a c);
  Alcotest.(check bool) "multiplicity matters" false (R.bag_equal a d)

let test_bag_equal_by_name () =
  let a = R.create [ "x"; "y" ] [ [| i 1; i 2 |] ] in
  let b = R.create [ "y"; "x" ] [ [| i 2; i 1 |] ] in
  Alcotest.(check bool) "column reorder ok" true (R.bag_equal_by_name a b);
  Alcotest.(check bool) "order-sensitive variant" false (R.bag_equal a b)

let test_bag_equal_approx () =
  let a = R.create [ "x" ] [ [| f 100.0 |] ] in
  let b = R.create [ "x" ] [ [| f (100.0 +. 1e-10) |] ] in
  let c = R.create [ "x" ] [ [| f 100.1 |] ] in
  Alcotest.(check bool) "tiny drift ok" true (R.bag_equal_approx a b);
  Alcotest.(check bool) "real difference caught" false (R.bag_equal_approx a c);
  Alcotest.(check bool) "int/float mix" true
    (R.bag_equal_approx
       (R.create [ "x" ] [ [| i 2 |] ])
       (R.create [ "x" ] [ [| f 2.0 |] ]))

let test_sort_filter_append () =
  let r = mk () in
  let sorted = R.sort (fun x y -> V.compare y.(0) x.(0)) r in
  Alcotest.(check bool) "sorted desc" true
    ((List.hd (R.rows sorted)).(0) = i 2);
  let filtered = R.filter (fun row -> row.(0) = i 1) r in
  Alcotest.(check int) "filtered" 2 (R.cardinality filtered);
  let appended = R.append r [ [| i 9; s "z" |] ] in
  Alcotest.(check int) "appended" 4 (R.cardinality appended)

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_pp_contains_data () =
  let txt = R.to_string (mk ()) in
  Alcotest.(check bool) "row count shown" true (contains_sub txt "(3 rows)");
  Alcotest.(check bool) "header shown" true (contains_sub txt "| a ")

let suite =
  [
    Alcotest.test_case "create checks width" `Quick test_create_checks_width;
    Alcotest.test_case "basics" `Quick test_basics;
    Alcotest.test_case "project reorders" `Quick test_project_reorders;
    Alcotest.test_case "distinct" `Quick test_distinct;
    Alcotest.test_case "distinct groups nulls" `Quick test_distinct_null_grouping;
    Alcotest.test_case "bag equality" `Quick test_bag_equal;
    Alcotest.test_case "bag equality by name" `Quick test_bag_equal_by_name;
    Alcotest.test_case "approximate bag equality" `Quick test_bag_equal_approx;
    Alcotest.test_case "sort/filter/append" `Quick test_sort_filter_append;
    Alcotest.test_case "pretty printing" `Quick test_pp_contains_data;
  ]
