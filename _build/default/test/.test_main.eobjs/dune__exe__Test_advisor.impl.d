test/test_advisor.ml: Alcotest Catalog Data List Mvstore Printf Sqlsyn String Workload
