test/test_lexer.ml: Alcotest List Sqlsyn
