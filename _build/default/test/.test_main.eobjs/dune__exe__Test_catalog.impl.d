test/test_catalog.ml: Alcotest Catalog Data
