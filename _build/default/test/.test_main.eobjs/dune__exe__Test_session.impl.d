test/test_session.ml: Alcotest Array Data List Mvstore Sqlsyn String
