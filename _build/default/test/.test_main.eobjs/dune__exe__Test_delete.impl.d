test/test_delete.ml: Alcotest Array Data Engine Gen Helpers List Mvstore Option Printf QCheck QCheck_alcotest
