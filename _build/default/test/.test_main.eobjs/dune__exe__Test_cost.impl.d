test/test_cost.ml: Alcotest Astmatch Catalog Data Engine Float Helpers Lazy Printf Qgm Workload
