test/test_csv.ml: Alcotest Array Data Filename Helpers List Mvstore Printf String Sys Unix
