test/test_expr.ml: Alcotest Data Engine Gen List QCheck QCheck_alcotest Qgm String
