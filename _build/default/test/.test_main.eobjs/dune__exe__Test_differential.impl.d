test/test_differential.ml: Alcotest Array Data Engine Helpers Lazy List Printexc Printf QCheck QCheck_alcotest Qgm String
