test/test_unparse.ml: Alcotest Array Astmatch Catalog Data Engine Helpers Lazy List Printf Qgm Workload
