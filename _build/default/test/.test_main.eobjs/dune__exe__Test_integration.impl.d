test/test_integration.ml: Alcotest Array Astmatch Data Engine Helpers Lazy List Mvstore Qgm Sqlsyn String Workload
