test/helpers.ml: Alcotest Array Astmatch Catalog Data Engine List Qgm Sqlsyn
