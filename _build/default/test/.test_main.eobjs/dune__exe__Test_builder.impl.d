test/test_builder.ml: Alcotest Helpers List Printf Qgm
