test/test_patterns.ml: Alcotest Astmatch Engine Helpers Lazy Workload
