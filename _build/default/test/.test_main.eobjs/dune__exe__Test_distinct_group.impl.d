test/test_distinct_group.ml: Alcotest Engine Helpers Lazy Workload
