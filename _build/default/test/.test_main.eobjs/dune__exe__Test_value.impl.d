test/test_value.ml: Alcotest Data Gen QCheck QCheck_alcotest
