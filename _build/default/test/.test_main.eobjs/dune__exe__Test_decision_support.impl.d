test/test_decision_support.ml: Alcotest Data Lazy List Mvstore Printf Sqlsyn Workload
