test/test_relation.ml: Alcotest Array Data Helpers List String
