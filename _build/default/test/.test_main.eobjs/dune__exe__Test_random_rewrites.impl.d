test/test_random_rewrites.ml: Alcotest Array Data Engine Helpers Lazy List Printexc Printf QCheck QCheck_alcotest Random String Workload
