test/test_equiv.ml: Alcotest Astmatch Data Gen List QCheck QCheck_alcotest Qgm
