test/test_union.ml: Alcotest Array Data Engine Helpers Lazy List Printf Qgm Workload
