test/test_store.ml: Alcotest Array Catalog Data Engine Gen Helpers List Mvstore Option QCheck QCheck_alcotest
