test/test_exec.ml: Alcotest Array Catalog Data Engine Helpers List
