test/test_subsume.ml: Alcotest Astmatch Data Qgm
