test/test_props.ml: Alcotest Astmatch Helpers List Option Qgm
