test/test_rewrite.ml: Alcotest Astmatch Catalog Data Engine Helpers Lazy List Option Qgm String Workload
