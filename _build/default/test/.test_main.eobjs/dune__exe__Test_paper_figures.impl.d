test/test_paper_figures.ml: Alcotest Catalog Data Engine Helpers Lazy List Printf Workload
