test/test_parser.ml: Alcotest Data Gen List QCheck QCheck_alcotest Sqlsyn String
