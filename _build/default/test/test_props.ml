(* Derived properties: nullability analysis and key detection. *)

open Helpers
module P = Astmatch.Props
module G = Qgm.Graph

let nullable sql col =
  let cat = tiny_catalog () in
  let g = build cat sql in
  P.column_nullable cat g (G.root g) col

let test_base_nullability () =
  Alcotest.(check bool) "not null col" false (nullable "select k, v from fact" "k");
  Alcotest.(check bool) "nullable col" true (nullable "select k, v from fact" "v")

let test_expr_nullability () =
  Alcotest.(check bool) "arith over not-null" false
    (nullable "select k + 1 as k1 from fact" "k1");
  Alcotest.(check bool) "arith over nullable" true
    (nullable "select v + 1 as v1 from fact" "v1");
  Alcotest.(check bool) "is null is boolean" false
    (nullable "select v is null as b from fact" "b");
  Alcotest.(check bool) "null literal" true
    (nullable "select null as n from fact" "n");
  Alcotest.(check bool) "coalesce with constant" false
    (nullable "select coalesce(v, 0) as c from fact" "c")

let test_aggregate_nullability () =
  Alcotest.(check bool) "count never null" false
    (nullable "select grp, count(v) as c from fact group by grp" "c");
  Alcotest.(check bool) "count(*) never null" false
    (nullable "select grp, count(*) as c from fact group by grp" "c");
  Alcotest.(check bool) "sum may be null" true
    (nullable "select grp, sum(v) as s from fact group by grp" "s");
  Alcotest.(check bool) "grouping col inherits" false
    (nullable "select grp, count(*) as c from fact group by grp" "grp")

let test_cube_nullability () =
  (* a grouping column missing from some cuboid is NULL-padded *)
  Alcotest.(check bool) "padded column nullable" true
    (nullable
       "select grp, k, count(*) as c from fact group by grouping sets((grp, k), (grp))"
       "k");
  Alcotest.(check bool) "column in every set keeps base nullability" false
    (nullable
       "select grp, k, count(*) as c from fact group by grouping sets((grp, k), (grp))"
       "grp")

let test_scalar_subquery_nullable () =
  Alcotest.(check bool) "scalar subquery output may be empty" true
    (nullable "select k, (select id from dims) as x from fact" "x")

let test_keys () =
  let cat = tiny_catalog () in
  let g = build cat "select k from fact" in
  let base_id =
    List.find
      (fun id -> Qgm.Box.is_base (G.box g id))
      (G.reachable g (G.root g))
  in
  Alcotest.(check bool) "pk cols are key" true
    (P.cols_are_key cat g base_id [ "k" ]);
  Alcotest.(check bool) "non key" false (P.cols_are_key cat g base_id [ "dim" ]);
  Alcotest.(check string) "base table name" "fact"
    (Option.get (P.base_table_of g base_id))

let test_group_keys () =
  let cat = tiny_catalog () in
  let g = build cat "select grp, count(*) as c from fact group by grp" in
  let group_id =
    List.find
      (fun id -> Qgm.Box.is_group (G.box g id))
      (G.reachable g (G.root g))
  in
  Alcotest.(check bool) "grouping cols are key of group output" true
    (P.cols_are_key cat g group_id [ "grp" ]);
  Alcotest.(check bool) "superset ok" true
    (P.cols_are_key cat g group_id [ "grp"; "c" ])

let suite =
  [
    Alcotest.test_case "base nullability" `Quick test_base_nullability;
    Alcotest.test_case "expression nullability" `Quick test_expr_nullability;
    Alcotest.test_case "aggregate nullability" `Quick test_aggregate_nullability;
    Alcotest.test_case "cube padding nullability" `Quick test_cube_nullability;
    Alcotest.test_case "scalar subquery nullability" `Quick
      test_scalar_subquery_nullable;
    Alcotest.test_case "base keys" `Quick test_keys;
    Alcotest.test_case "group keys" `Quick test_group_keys;
  ]
