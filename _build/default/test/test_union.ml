(* UNION / UNION ALL: parsing, semantics, nesting in FROM, interaction with
   the rewriter (union blocks are opaque to matching, but their branches
   are not). *)

module R = Data.Relation
module V = Data.Value
open Helpers

let db = lazy (tiny_db ())

let rows sql =
  let db = Lazy.force db in
  List.map (List.map V.to_string) (sorted_rows (run db sql))

let test_union_all () =
  Alcotest.(check (list (list string)))
    "bag concat"
    [ [ "x" ]; [ "x" ]; [ "x" ]; [ "y" ]; [ "y" ]; [ "y" ]; [ "y" ]; [ "y" ]; [ "y" ] ]
    (rows "select grp from fact union all select grp from fact where grp = 'y'")

let test_union_dedups () =
  Alcotest.(check (list (list string)))
    "set union" [ [ "x" ]; [ "y" ] ]
    (rows "select grp from fact union select grp from fact")

let test_mixed_chain_left_assoc () =
  (* (a UNION b) UNION ALL c: dedup first, then append duplicates *)
  Alcotest.(check int) "left associativity" 4
    (List.length
       (rows
          "select grp from fact union select grp from fact union all select \
           distinct grp from fact"))

let test_union_in_from () =
  Alcotest.(check (list (list string)))
    "aggregate over a union"
    [ [ "6" ] ]
    (rows
       "select count(*) as c from (select k from fact where v > 6 union all \
        select k from fact where v <= 6 or v is null) as u")

let test_arity_mismatch () =
  let db = Lazy.force db in
  match run db "select k from fact union all select k, v from fact" with
  | exception Qgm.Builder.Sem_error _ -> ()
  | _ -> Alcotest.fail "arity mismatch accepted"

let test_order_limit_apply_to_whole () =
  let db = Lazy.force db in
  let r =
    run db
      "select k from fact where k <= 2 union all select k from fact where k \
       >= 5 order by k desc limit 2"
  in
  Alcotest.(check (list (list string)))
    "ordered over union" [ [ "6" ]; [ "5" ] ]
    (List.map (List.map V.to_string) (List.map Array.to_list (R.rows r)))

let test_union_column_names_from_head () =
  let db = Lazy.force db in
  let r = run db "select k as id from fact union all select v as other from fact" in
  Alcotest.(check (list string)) "head names win" [ "id" ]
    (Array.to_list (R.columns r))

let test_engines_agree_on_union () =
  let db = Lazy.force db in
  List.iter
    (fun sql ->
      let g = build (Engine.Db.catalog db) sql in
      Alcotest.(check bool) sql true
        (R.bag_equal_approx (Engine.Exec.run db g) (Engine.Reference.run db g)))
    [
      "select grp from fact union all select label from dims";
      "select grp from fact union select label from dims";
      "select grp, count(*) as c from fact group by grp union all select \
       label, id from dims";
    ]

let test_union_roundtrips () =
  let db = Lazy.force db in
  List.iter
    (fun sql ->
      let g = build (Engine.Db.catalog db) sql in
      let printed = Qgm.Unparse.to_sql g in
      let g2 = build (Engine.Db.catalog db) printed in
      Alcotest.(check bool)
        (Printf.sprintf "%s -> %s" sql printed)
        true
        (R.bag_equal_approx (Engine.Exec.run db g) (Engine.Exec.run db g2)))
    [
      "select grp from fact union all select label from dims";
      "select k from fact where v > 6 union select id from dims";
    ]

let test_branch_of_union_still_rewrites () =
  (* the union box itself never matches, but a branch block can *)
  let star =
    Engine.Db.of_tables
      (Workload.Star_schema.catalog ())
      (Workload.Star_schema.generate
         {
           Workload.Star_schema.default_params with
           n_custs = 2;
           trans_per_acct_year = 10;
         })
  in
  let rewritten, equal =
    rewrite_check star
      ~query:
        "select s from (select flid as g, sum(qty) as s from Trans group by \
         flid union all select faid as g, sum(qty) as s from Trans group by \
         faid) as u"
      ~ast:"select flid, sum(qty) as s from Trans group by flid"
  in
  Alcotest.(check bool) "branch rewritten" true rewritten;
  Alcotest.(check bool) "results equal" true equal

let test_union_never_subsumed_by_select () =
  let star =
    Engine.Db.of_tables
      (Workload.Star_schema.catalog ())
      (Workload.Star_schema.generate
         {
           Workload.Star_schema.default_params with
           n_custs = 2;
           trans_per_acct_year = 10;
         })
  in
  let rewritten, _ =
    rewrite_check star
      ~query:"select tid from Trans where qty > 2"
      ~ast:
        "select tid from Trans where qty > 2 union all select tid from Trans \
         where qty <= 2"
  in
  Alcotest.(check bool) "union AST cannot answer a select" false rewritten

let suite =
  [
    Alcotest.test_case "union all" `Quick test_union_all;
    Alcotest.test_case "union dedups" `Quick test_union_dedups;
    Alcotest.test_case "mixed chain" `Quick test_mixed_chain_left_assoc;
    Alcotest.test_case "union in FROM" `Quick test_union_in_from;
    Alcotest.test_case "arity mismatch" `Quick test_arity_mismatch;
    Alcotest.test_case "order/limit over union" `Quick
      test_order_limit_apply_to_whole;
    Alcotest.test_case "column names from head" `Quick
      test_union_column_names_from_head;
    Alcotest.test_case "engines agree" `Quick test_engines_agree_on_union;
    Alcotest.test_case "unparse roundtrip" `Quick test_union_roundtrips;
    Alcotest.test_case "branch rewrites" `Quick test_branch_of_union_still_rewrites;
    Alcotest.test_case "union AST opaque" `Quick
      test_union_never_subsumed_by_select;
  ]
