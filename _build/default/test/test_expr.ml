(* QGM expression algebra: traversals and the semantic normalization the
   matcher's comparisons rely on. *)

module E = Qgm.Expr
module V = Data.Value

let c n = E.Const (V.Int n)
let x = E.Col "x"
let y = E.Col "y"

let test_normalize_commutes () =
  Alcotest.(check bool) "a+b = b+a" true
    (E.equal_norm (E.Binop ("+", x, y)) (E.Binop ("+", y, x)));
  Alcotest.(check bool) "a*b = b*a" true
    (E.equal_norm (E.Binop ("*", x, y)) (E.Binop ("*", y, x)));
  Alcotest.(check bool) "assoc chains" true
    (E.equal_norm
       (E.Binop ("+", E.Binop ("+", x, y), c 1))
       (E.Binop ("+", y, E.Binop ("+", c 1, x))));
  Alcotest.(check bool) "eq sides" true
    (E.equal_norm (E.Binop ("=", x, y)) (E.Binop ("=", y, x)));
  Alcotest.(check bool) "and reorders" true
    (E.equal_norm
       (E.Binop ("AND", E.Binop ("=", x, c 1), E.Binop ("=", y, c 2)))
       (E.Binop ("AND", E.Binop ("=", y, c 2), E.Binop ("=", x, c 1))))

let test_normalize_comparisons () =
  Alcotest.(check bool) "x > 10 is 10 < x" true
    (E.equal_norm (E.Binop (">", x, c 10)) (E.Binop ("<", c 10, x)));
  Alcotest.(check bool) "x >= 10 is 10 <= x" true
    (E.equal_norm (E.Binop (">=", x, c 10)) (E.Binop ("<=", c 10, x)));
  Alcotest.(check bool) "minus is not commutative" false
    (E.equal_norm (E.Binop ("-", x, y)) (E.Binop ("-", y, x)))

let test_constant_folding () =
  Alcotest.(check bool) "1+2 = 3" true (E.normalize (E.Binop ("+", c 1, c 2)) = c 3);
  Alcotest.(check bool) "fold within chain" true
    (E.equal_norm
       (E.Binop ("+", c 1, E.Binop ("+", x, c 2)))
       (E.Binop ("+", x, c 3)));
  Alcotest.(check bool) "double negation" true
    (E.normalize (E.Unop ("NOT", E.Unop ("NOT", x))) = x)

let test_traversals () =
  let e = E.Binop ("+", E.Fncall ("f", [ x; c 1 ]), E.Agg ({ E.fn = E.Sum; distinct = false }, Some y)) in
  Alcotest.(check (list string)) "cols" [ "x"; "y" ] (E.cols e);
  Alcotest.(check bool) "contains_agg" true (E.contains_agg e);
  Alcotest.(check bool) "no agg" false (E.contains_agg x);
  let mapped = E.map_col String.uppercase_ascii e in
  Alcotest.(check (list string)) "map_col" [ "X"; "Y" ] (E.cols mapped)

let test_subst_col () =
  let e = E.Binop ("+", x, y) in
  let ok = E.subst_col (fun _ -> Some (c 1)) e in
  Alcotest.(check bool) "total subst" true (ok = Some (E.Binop ("+", c 1, c 1)));
  let fail = E.subst_col (fun n -> if n = "x" then Some (c 1) else None) e in
  Alcotest.(check bool) "partial subst fails" true (fail = None)

let test_children_rebuild () =
  let e = E.Case ([ (x, y) ], Some (c 1)) in
  let kids = E.children e in
  Alcotest.(check int) "case children" 3 (List.length kids);
  Alcotest.(check bool) "rebuild identity" true (E.with_children e kids = e)

(* random expressions over two integer variables; check that normalization
   preserves evaluation *)
let arb_int_expr =
  let open QCheck in
  let leaf =
    Gen.oneof
      [
        Gen.map (fun n -> E.Const (V.Int (n - 8))) (Gen.int_bound 16);
        Gen.return x;
        Gen.return y;
      ]
  in
  let gen =
    Gen.sized (fun n ->
        let rec go n =
          if n <= 1 then leaf
          else
            Gen.oneof
              [
                leaf;
                Gen.map2 (fun a b -> E.Binop ("+", a, b)) (go (n / 2)) (go (n / 2));
                Gen.map2 (fun a b -> E.Binop ("*", a, b)) (go (n / 2)) (go (n / 2));
                Gen.map2 (fun a b -> E.Binop ("-", a, b)) (go (n / 2)) (go (n / 2));
                Gen.map (fun a -> E.Unop ("-", a)) (go (n - 1));
              ]
        in
        go (min n 10))
  in
  QCheck.make ~print:(E.to_string (fun c -> c)) gen

let eval_with vx vy e =
  Engine.Eval.eval (fun c -> if c = "x" then V.Int vx else V.Int vy) e

let prop_normalize_preserves_eval =
  QCheck.Test.make ~name:"normalize preserves evaluation" ~count:300
    QCheck.(triple arb_int_expr small_signed_int small_signed_int)
    (fun (e, vx, vy) ->
      V.equal (eval_with vx vy e) (eval_with vx vy (E.normalize e)))

let prop_normalize_idempotent =
  QCheck.Test.make ~name:"normalize is idempotent" ~count:300 arb_int_expr
    (fun e -> E.normalize (E.normalize e) = E.normalize e)

let suite =
  [
    Alcotest.test_case "commutative normalization" `Quick test_normalize_commutes;
    Alcotest.test_case "comparison direction" `Quick test_normalize_comparisons;
    Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "traversals" `Quick test_traversals;
    Alcotest.test_case "substitution" `Quick test_subst_col;
    Alcotest.test_case "children/rebuild" `Quick test_children_rebuild;
    QCheck_alcotest.to_alcotest prop_normalize_preserves_eval;
    QCheck_alcotest.to_alcotest prop_normalize_idempotent;
  ]
