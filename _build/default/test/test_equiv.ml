(* Column-equivalence classes (union-find over equality predicates). *)

module Eq = Astmatch.Equiv
module E = Qgm.Expr

let test_basic_union () =
  let t = Eq.of_equalities [ ("a", "b"); ("b", "c") ] in
  Alcotest.(check bool) "a~c" true (Eq.same t "a" "c");
  Alcotest.(check bool) "a~b" true (Eq.same t "a" "b");
  Alcotest.(check bool) "d alone" false (Eq.same t "a" "d");
  Alcotest.(check string) "repr deterministic (smallest)" "a" (Eq.repr t "c")

let test_disjoint_classes () =
  let t = Eq.of_equalities [ ("a", "b"); ("x", "y") ] in
  Alcotest.(check bool) "separate" false (Eq.same t "a" "x");
  Alcotest.(check bool) "within 1" true (Eq.same t "a" "b");
  Alcotest.(check bool) "within 2" true (Eq.same t "x" "y")

let test_members () =
  let t = Eq.of_equalities [ ("a", "b"); ("b", "c") ] in
  Alcotest.(check (list string)) "class members" [ "a"; "b"; "c" ]
    (List.sort compare (Eq.members t "b"));
  Alcotest.(check (list string)) "singleton" [ "z" ] (Eq.members t "z")

let test_of_preds () =
  let t =
    Eq.of_preds
      [
        E.Binop ("=", E.Col "faid", E.Col "aid");
        E.Binop ("<", E.Col "x", E.Const (Data.Value.Int 3));
        E.Binop ("=", E.Col "p", E.Binop ("+", E.Col "q", E.Const (Data.Value.Int 1)));
      ]
  in
  Alcotest.(check bool) "join equality captured" true (Eq.same t "faid" "aid");
  Alcotest.(check bool) "non-equality ignored" false (Eq.same t "x" "p");
  Alcotest.(check bool) "complex equality ignored" false (Eq.same t "p" "q")

let test_canon () =
  let t = Eq.of_equalities [ ("b", "a") ] in
  let e = E.Binop ("+", E.Col "b", E.Col "c") in
  Alcotest.(check bool) "canonicalized" true
    (Eq.canon t e = E.Binop ("+", E.Col "a", E.Col "c"))

let prop_transitive_closure =
  QCheck.Test.make ~name:"pairwise chain is fully connected" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 10) (pair (int_bound 8) (int_bound 8)))
    (fun pairs ->
      let t = Eq.of_equalities pairs in
      (* same is an equivalence relation: reflexive + symmetric *)
      List.for_all
        (fun (a, b) -> Eq.same t a b && Eq.same t b a && Eq.same t a a)
        pairs)

let suite =
  [
    Alcotest.test_case "basic union" `Quick test_basic_union;
    Alcotest.test_case "disjoint classes" `Quick test_disjoint_classes;
    Alcotest.test_case "members" `Quick test_members;
    Alcotest.test_case "from predicates" `Quick test_of_preds;
    Alcotest.test_case "canonicalization" `Quick test_canon;
    QCheck_alcotest.to_alcotest prop_transitive_closure;
  ]
