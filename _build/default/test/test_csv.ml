(* CSV encoding/decoding and the COPY statement. *)

module C = Data.Csv
module R = Data.Relation
module V = Data.Value
module Sess = Mvstore.Session
open Helpers

let types = [ V.Tint; V.Tstr; V.Tfloat; V.Tdate; V.Tbool ]

let test_parse_basic () =
  let rows =
    C.parse_string ~types ~header:false
      "1,hello,2.5,1994-07-15,true\n2,world,0.1,2000-01-01,f\n"
  in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  Alcotest.(check string) "date parsed" "1994-07-15"
    (V.to_string (List.hd rows).(3))

let test_parse_quoting () =
  let rows =
    C.parse_string ~types:[ V.Tstr; V.Tstr ] ~header:false
      "\"a,b\",\"say \"\"hi\"\"\"\nplain,\"multi\nline\"\n"
  in
  match rows with
  | [ r1; r2 ] ->
      Alcotest.(check string) "comma in field" "a,b" (V.to_string r1.(0));
      Alcotest.(check string) "escaped quote" "say \"hi\"" (V.to_string r1.(1));
      Alcotest.(check string) "newline in field" "multi\nline"
        (V.to_string r2.(1))
  | _ -> Alcotest.fail "row count"

let test_nulls_and_header () =
  let rows =
    C.parse_string ~types:[ V.Tint; V.Tstr ] ~header:true "a,b\n1,\n,x\n"
  in
  match rows with
  | [ r1; r2 ] ->
      Alcotest.(check bool) "empty unquoted is NULL" true (r1.(1) = V.Null);
      Alcotest.(check bool) "leading NULL" true (r2.(0) = V.Null)
  | _ -> Alcotest.fail "row count"

let test_quoted_empty_is_empty_string () =
  let rows =
    C.parse_string ~types:[ V.Tstr ] ~header:false "\"\"\n"
  in
  Alcotest.(check bool) "quoted empty" true ((List.hd rows).(0) = V.Str "")

let test_errors () =
  let expect f = match f () with
    | exception C.Csv_error _ -> ()
    | _ -> Alcotest.fail "expected Csv_error"
  in
  expect (fun () -> C.parse_string ~types:[ V.Tint ] ~header:false "abc\n");
  expect (fun () -> C.parse_string ~types:[ V.Tint; V.Tint ] ~header:false "1\n");
  expect (fun () -> C.parse_string ~types:[ V.Tstr ] ~header:false "\"open\n")

let test_roundtrip () =
  let rel =
    R.create [ "a"; "b" ]
      [
        [| i 1; s "plain" |];
        [| i 2; s "with,comma" |];
        [| V.Null; s "quote\"inside" |];
      ]
  in
  let text = C.to_string rel in
  let rows = C.parse_string ~types:[ V.Tint; V.Tstr ] ~header:true text in
  Alcotest.(check bool) "roundtrip" true
    (R.bag_equal rel (R.create [ "a"; "b" ] rows))

let test_copy_statements () =
  let dir = Filename.temp_file "astrw" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "t.csv" in
  let sn = Sess.create () in
  ignore
    (Sess.exec_sql sn
       "CREATE TABLE t (g INT NOT NULL, v FLOAT); \
        INSERT INTO t VALUES (1, 1.5), (2, NULL);");
  (match Sess.exec_sql sn (Printf.sprintf "COPY t TO '%s';" path) with
  | [ Sess.Msg m ] -> Alcotest.(check bool) "export message" true (String.length m > 0)
  | _ -> Alcotest.fail "copy to");
  (* reload into a fresh table, with summary maintenance *)
  ignore
    (Sess.exec_sql sn
       "CREATE TABLE t2 (g INT NOT NULL, v FLOAT); \
        CREATE SUMMARY TABLE m2 AS SELECT g, COUNT(*) AS c FROM t2 GROUP BY g;");
  ignore (Sess.exec_sql sn (Printf.sprintf "COPY t2 FROM '%s' WITH HEADER;" path));
  let rel =
    match List.rev (Sess.exec_sql sn "SELECT g, v FROM t2 ORDER BY g;") with
    | Sess.Table r :: _ -> r
    | _ -> Alcotest.fail "query"
  in
  Alcotest.(check int) "loaded rows" 2 (R.cardinality rel);
  (* the summary absorbed the load incrementally *)
  let mv =
    match List.rev (Sess.exec_sql sn "SELECT g, c FROM m2 ORDER BY g;") with
    | Sess.Table r :: _ -> r
    | _ -> Alcotest.fail "summary query"
  in
  Alcotest.(check int) "summary rows" 2 (R.cardinality mv);
  Sys.remove path;
  Unix.rmdir dir

let test_copy_errors () =
  let sn = Sess.create () in
  ignore (Sess.exec_sql sn "CREATE TABLE t (a INT NOT NULL);");
  (match Sess.exec_sql sn "COPY ghost TO '/tmp/x.csv';" with
  | exception Sess.Session_error _ -> ()
  | _ -> Alcotest.fail "unknown table accepted");
  match Sess.exec_sql sn "COPY t FROM '/nonexistent/file.csv';" with
  | exception Sess.Session_error _ -> ()
  | _ -> Alcotest.fail "missing file accepted"

let suite =
  [
    Alcotest.test_case "parse basic" `Quick test_parse_basic;
    Alcotest.test_case "quoting" `Quick test_parse_quoting;
    Alcotest.test_case "nulls and header" `Quick test_nulls_and_header;
    Alcotest.test_case "quoted empty string" `Quick
      test_quoted_empty_is_empty_string;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "COPY statements" `Quick test_copy_statements;
    Alcotest.test_case "COPY errors" `Quick test_copy_errors;
  ]
