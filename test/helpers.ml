(* Shared test utilities. *)

module V = Data.Value
module R = Data.Relation

let i n = V.Int n
let f x = V.Float x
let s x = V.Str x
let d y m dd = V.date y m dd

(* A tiny two-table schema used by many unit tests:
   fact(k, dim, grp, v)  with FK fact.dim -> dims.id
   dims(id, label, region) *)
let tiny_catalog () =
  let open Catalog in
  let col name ty nullable = { col_name = name; col_ty = ty; nullable } in
  empty
  |> fun cat ->
  add_table cat
    {
      tbl_name = "dims";
      tbl_cols =
        [ col "id" V.Tint false; col "label" V.Tstr false; col "region" V.Tstr true ];
      primary_key = [ "id" ];
      unique_keys = [];
      foreign_keys = [];
    }
  |> fun cat ->
  add_table cat
    {
      tbl_name = "fact";
      tbl_cols =
        [
          col "k" V.Tint false;
          col "dim" V.Tint false;
          col "grp" V.Tstr false;
          col "v" V.Tint true;
        ];
      primary_key = [ "k" ];
      unique_keys = [];
      foreign_keys =
        [ { fk_cols = [ "dim" ]; fk_ref_table = "dims"; fk_ref_cols = [ "id" ] } ];
    }

let tiny_db () =
  let cat = tiny_catalog () in
  let dims =
    R.create [ "id"; "label"; "region" ]
      [
        [| i 1; s "a"; s "east" |];
        [| i 2; s "b"; s "east" |];
        [| i 3; s "c"; V.Null |];
      ]
  in
  let fact =
    R.create [ "k"; "dim"; "grp"; "v" ]
      [
        [| i 1; i 1; s "x"; i 10 |];
        [| i 2; i 1; s "x"; i 20 |];
        [| i 3; i 2; s "y"; i 5 |];
        [| i 4; i 2; s "x"; V.Null |];
        [| i 5; i 3; s "y"; i 7 |];
        [| i 6; i 3; s "y"; i 7 |];
      ]
  in
  Engine.Db.of_tables cat [ ("dims", dims); ("fact", fact) ]

let build cat sql = Qgm.Builder.build cat (Sqlsyn.Parser.parse_query sql)

let run db sql = Engine.Exec.run db (build (Engine.Db.catalog db) sql)

(* Match a query against one AST definition; both given as SQL. *)
let match_sql cat ~query ~ast =
  Astmatch.Navigator.find_matches cat ~query:(build cat query)
    ~ast:(build cat ast)

(* Full pipeline on a db: materialize the AST, rewrite, execute both ways.
   Returns (rewritten?, results_equal). *)
(* Every graph this harness touches must satisfy the static validator —
   builder outputs and every rewrite the navigator accepts. *)
let assert_well_formed ~what cat g =
  match Lint.Validate.check ~cat g with
  | [] -> ()
  | vs -> Alcotest.failf "%s fails validation: %s" what (Lint.Validate.summary vs)

let rewrite_check ?(mv_name = "mv0") db ~query ~ast =
  let cat = Engine.Db.catalog db in
  let qg = build cat query in
  let ag = build cat ast in
  assert_well_formed ~what:"builder output (query)" cat qg;
  assert_well_formed ~what:"builder output (ast)" cat ag;
  let mv_rel = Engine.Exec.run db ag in
  let cols = Qgm.Typing.infer_outputs cat ag in
  let cat2 =
    Catalog.add_table cat
      {
        Catalog.tbl_name = mv_name;
        tbl_cols =
          List.map
            (fun (n, ty) ->
              { Catalog.col_name = n; col_ty = ty; nullable = true })
            cols;
        primary_key = [];
        unique_keys = [];
        foreign_keys = [];
      }
  in
  let db = Engine.Db.put (Engine.Db.with_catalog db cat2) mv_name mv_rel in
  (* exercise the match decision directly (cost-based routing is tested
     separately): apply EVERY matched site and require result equality *)
  let sites = Astmatch.Navigator.find_matches cat2 ~query:qg ~ast:ag in
  if sites = [] then (false, true)
  else
    let orig = Engine.Exec.run db qg in
    let mv_cols = Array.to_list (R.columns mv_rel) in
    let all_equal =
      List.for_all
        (fun { Astmatch.Navigator.site_box; site_result; _ } ->
          let g' =
            Astmatch.Rewrite.apply ~query:qg ~target:site_box
              ~result:site_result ~mv_table:mv_name ~mv_cols
          in
          assert (Qgm.Graph.validate g' = []);
          assert_well_formed ~what:"rewritten plan" cat2 g';
          R.bag_equal_approx orig (Engine.Exec.run db g'))
        sites
    in
    (true, all_equal)

let rows_testable : R.t Alcotest.testable =
  Alcotest.testable R.pp R.bag_equal

let check_rows msg expected actual =
  Alcotest.check rows_testable msg expected actual

let sorted_rows rel =
  List.sort compare (List.map Array.to_list (R.rows rel))
