(* Static IR validation (Lint.Validate) and summary-table lint
   (Lint.Advisor).

   The validator tests hand-build ill-formed graphs with the Graph API and
   check each one is caught with the right V-code; the advisor tests drive
   whole sessions through SQL and look for L-codes on the definitions.
   The acceptance test at the bottom arms the Corrupt fault at
   ASTQL_VALIDATE=2 with runtime verification OFF and shows the corruption
   is rejected *statically* at plan time: typed invalid-ir rejection in
   EXPLAIN REWRITE VERBOSE, candidate quarantined, correct answer served
   from the base plan. *)

module B = Qgm.Box
module E = Qgm.Expr
module G = Qgm.Graph
module V = Data.Value
module Val = Lint.Validate
module Sess = Mvstore.Session
module F = Guard.Fault
module P = Plancache

let parse = Sqlsyn.Parser.parse_query

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ---------------- graph-building helpers ---------------- *)

let base_t g =
  G.add_box g (B.Base { B.bt_table = "t"; bt_cols = [ "g"; "v" ] })

let select ~quants ?(preds = []) ~outs ?(distinct = false) g =
  G.add_box g
    (B.Select
       {
         B.sel_quants = quants;
         sel_preds = preds;
         sel_outs = outs;
         sel_distinct = distinct;
       })

let qcol q col = E.Col { B.quant = q.B.q_id; col }

(* a well-formed SELECT g, v FROM t, used as the starting point that each
   test then breaks in exactly one way *)
let valid_graph () =
  let g, base = base_t G.empty in
  let g, q = G.fresh_quant g base B.Foreach in
  let g, root =
    select ~quants:[ q ] ~outs:[ ("g", qcol q "g"); ("v", qcol q "v") ] g
  in
  (G.set_root g root, base, q)

let codes vs = List.sort_uniq compare (List.map (fun v -> v.Val.v_code) vs)

let expect_code ?cat what code g =
  let cs = codes (Val.check ?cat g) in
  Alcotest.(check bool)
    (Printf.sprintf "%s flags %s (got %s)" what code (String.concat "," cs))
    true (List.mem code cs)

let test_valid_graph_clean () =
  let g, _, _ = valid_graph () in
  Alcotest.(check (list string)) "no violations" [] (codes (Val.check g))

let test_v101_root_missing () =
  let g, _ = base_t G.empty in
  expect_code "dangling root" "V101" (G.set_root g 424242)

let test_v102_cycle () =
  (* a SELECT box made to consume itself *)
  let g, base = base_t G.empty in
  let g, q = G.fresh_quant g base B.Foreach in
  let g, root = select ~quants:[ q ] ~outs:[ ("g", qcol q "g") ] g in
  let self = { B.q_id = 77; q_box = root; q_kind = B.Foreach } in
  let g =
    G.update_box g root
      (B.Select
         {
           B.sel_quants = [ q; self ];
           sel_preds = [];
           sel_outs = [ ("g", qcol q "g") ];
           sel_distinct = false;
         })
  in
  expect_code "self-loop" "V102" (G.set_root g root)

let test_v103_dead_box () =
  let g, _, q = valid_graph () in
  let dead = { q with B.q_box = 424242 } in
  let root = G.root g in
  let g =
    G.update_box g root
      (B.Select
         {
           B.sel_quants = [ dead ];
           sel_preds = [];
           sel_outs = [ ("g", qcol dead "g") ];
           sel_distinct = false;
         })
  in
  expect_code "quantifier to dead box" "V103" g

let test_v104_foreign_quant () =
  let g, _, q = valid_graph () in
  let ghost = E.Col { B.quant = 999; col = "g" } in
  let root = G.root g in
  let g =
    G.update_box g root
      (B.Select
         {
           B.sel_quants = [ q ];
           sel_preds = [];
           sel_outs = [ ("g", ghost) ];
           sel_distinct = false;
         })
  in
  expect_code "undeclared quantifier" "V104" g

let test_v105_unknown_column () =
  let g, _, q = valid_graph () in
  let root = G.root g in
  let g =
    G.update_box g root
      (B.Select
         {
           B.sel_quants = [ q ];
           sel_preds = [ E.Binop ("<", qcol q "ghost", E.Const (V.Int 3)) ];
           sel_outs = [ ("g", qcol q "g") ];
           sel_distinct = false;
         })
  in
  expect_code "column not produced by child" "V105" g

let test_v106_duplicate_outputs () =
  let g, _, q = valid_graph () in
  let root = G.root g in
  let g =
    G.update_box g root
      (B.Select
         {
           B.sel_quants = [ q ];
           sel_preds = [];
           sel_outs = [ ("x", qcol q "g"); ("x", qcol q "v") ];
           sel_distinct = false;
         })
  in
  expect_code "duplicate output names" "V106" g

let test_v107_agg_in_select () =
  let g, _, q = valid_graph () in
  let root = G.root g in
  let sum = { E.fn = E.Sum; distinct = false } in
  let g =
    G.update_box g root
      (B.Select
       {
           B.sel_quants = [ q ];
           sel_preds = [];
           sel_outs = [ ("s", E.Agg (sum, Some (qcol q "v"))) ];
           sel_distinct = false;
         })
  in
  expect_code "aggregate in SELECT box" "V107" g

let group_over ?(grouping = B.Simple [ "g" ]) ?(aggs = []) ?(kind = B.Foreach)
    () =
  let g, base = base_t G.empty in
  let g, q = G.fresh_quant g base kind in
  let g, grp =
    G.add_box g
      (B.Group { B.grp_quant = q; grp_grouping = grouping; grp_aggs = aggs })
  in
  G.set_root g grp

let count_star = { E.fn = E.Count_star; distinct = false }
let sum_agg = { E.fn = E.Sum; distinct = false }

let test_v108_bad_grouping_key () =
  expect_code "grouping key not in child" "V108"
    (group_over ~grouping:(B.Simple [ "ghost" ])
       ~aggs:[ ("c", { B.agg = count_star; arg = None }) ]
       ())

let test_v109_agg_arity () =
  expect_code "SUM without argument" "V109"
    (group_over ~aggs:[ ("s", { B.agg = sum_agg; arg = None }) ] ());
  expect_code "COUNT(*) with argument" "V109"
    (group_over ~aggs:[ ("c", { B.agg = count_star; arg = Some "v" }) ] ())

let test_v111_scalar_group_child () =
  expect_code "scalar quantifier under GROUP BY" "V111"
    (group_over ~kind:B.Scalar
       ~aggs:[ ("c", { B.agg = count_star; arg = None }) ]
       ())

let test_v112_count_star_distinct () =
  expect_code "DISTINCT COUNT(*)" "V112"
    (group_over
       ~aggs:
         [ ("c", { B.agg = { E.fn = E.Count_star; distinct = true }; arg = None }) ]
       ())

let test_v113_non_canonical_gsets () =
  expect_code "empty grouping-set list" "V113"
    (group_over ~grouping:(B.Gsets []) ());
  expect_code "singleton grouping-set list" "V113"
    (group_over ~grouping:(B.Gsets [ [ "g" ] ]) ());
  expect_code "duplicate grouping sets" "V113"
    (group_over ~grouping:(B.Gsets [ [ "g" ]; [ "g" ] ]) ())

let test_v110_union_arity () =
  let g, b1 = base_t G.empty in
  let g, q1 = G.fresh_quant g b1 B.Foreach in
  let g, s1 = select ~quants:[ q1 ] ~outs:[ ("a", qcol q1 "g") ] g in
  let g, q2 = G.fresh_quant g b1 B.Foreach in
  let g, s2 =
    select ~quants:[ q2 ]
      ~outs:[ ("a", qcol q2 "g"); ("b", qcol q2 "v") ]
      g
  in
  let g, u1 = G.fresh_quant g s1 B.Foreach in
  let g, u2 = G.fresh_quant g s2 B.Foreach in
  let g, union =
    G.add_box g
      (B.Union { B.un_quants = [ u1; u2 ]; un_all = true; un_cols = [ "a" ] })
  in
  expect_code "branch arity mismatch" "V110" (G.set_root g union)

let test_v114_presentation () =
  let g, _, _ = valid_graph () in
  expect_code "ORDER BY unknown column" "V114"
    (G.set_presentation g { G.order_by = [ ("ghost", true) ]; limit = None });
  expect_code "negative LIMIT" "V114"
    (G.set_presentation g { G.order_by = []; limit = Some (-1) })

let test_v116_no_outputs () =
  let g, _, q = valid_graph () in
  let root = G.root g in
  let g =
    G.update_box g root
      (B.Select
         {
           B.sel_quants = [ q ];
           sel_preds = [];
           sel_outs = [];
           sel_distinct = false;
         })
  in
  expect_code "root without outputs" "V116" g

let test_v117_no_quantifiers () =
  let g, root =
    select ~quants:[] ~outs:[ ("one", E.Const (V.Int 1)) ] G.empty
  in
  expect_code "SELECT without quantifiers" "V117" (G.set_root g root)

let test_v115_non_boolean_predicate () =
  let cat =
    Catalog.add_table Catalog.empty
      {
        Catalog.tbl_name = "t";
        tbl_cols =
          [
            { Catalog.col_name = "g"; col_ty = V.Tint; nullable = false };
            { Catalog.col_name = "v"; col_ty = V.Tint; nullable = false };
          ];
        primary_key = [];
        unique_keys = [];
        foreign_keys = [];
      }
  in
  let g, _, q = valid_graph () in
  let root = G.root g in
  let g =
    G.update_box g root
      (B.Select
         {
           B.sel_quants = [ q ];
           (* an INT-typed expression where a boolean belongs *)
           sel_preds = [ E.Binop ("+", qcol q "v", E.Const (V.Int 1)) ];
           sel_outs = [ ("g", qcol q "g") ];
           sel_distinct = false;
         })
  in
  expect_code ~cat "non-boolean predicate" "V115" g;
  (* without a catalog the typing check is skipped, not crashed *)
  Alcotest.(check (list string)) "untyped check skips V115" []
    (codes (Val.check g))

(* builder output validates cleanly, catalog-typed included *)
let test_builder_output_clean () =
  let cat = Workload.Star_schema.catalog () in
  List.iter
    (fun sql ->
      let g = Qgm.Builder.build cat (parse sql) in
      Alcotest.(check (list string))
        (Printf.sprintf "%s is clean" sql)
        [] (codes (Val.check ~cat g)))
    [
      "SELECT flid, SUM(qty) AS s, COUNT(*) AS c FROM Trans GROUP BY flid";
      "SELECT flid, faid, SUM(price) AS r FROM Trans WHERE qty > 2 GROUP BY \
       GROUPING SETS((flid, faid), (flid), ())";
      "SELECT COUNT(DISTINCT faid) AS u FROM Trans";
    ]

(* ---------------- the level knob ---------------- *)

let test_level_parsing () =
  let check s expect =
    Alcotest.(check bool)
      (Printf.sprintf "parse %S" s)
      true
      (Lint.Level.of_string s = expect)
  in
  check "0" (Some Lint.Level.Off);
  check "off" (Some Lint.Level.Off);
  check "1" (Some Lint.Level.Final);
  check "final-plan" (Some Lint.Level.Final);
  check "2" (Some Lint.Level.Candidates);
  check "every-candidate" (Some Lint.Level.Candidates);
  check "ALL" (Some Lint.Level.Candidates);
  check "bogus" None;
  Lint.Level.with_level Lint.Level.Off (fun () ->
      Alcotest.(check bool) "off disables final" false (Lint.Level.final_on ());
      Alcotest.(check bool) "off disables candidates" false
        (Lint.Level.candidates_on ()));
  Lint.Level.with_level Lint.Level.Final (fun () ->
      Alcotest.(check bool) "final on" true (Lint.Level.final_on ());
      Alcotest.(check bool) "candidates off at final" false
        (Lint.Level.candidates_on ()));
  Lint.Level.with_level Lint.Level.Candidates (fun () ->
      Alcotest.(check bool) "candidates on" true (Lint.Level.candidates_on ()))

(* With the knob off, planning never invokes the validator. *)
let test_off_is_free () =
  Lint.Level.with_level Lint.Level.Off @@ fun () ->
  let sn = Sess.create () in
  ignore
    (Sess.exec_sql sn
       "CREATE TABLE t (g INT NOT NULL, v INT NOT NULL); \
        INSERT INTO t VALUES (1, 10), (2, 5); \
        CREATE SUMMARY TABLE m AS SELECT g, SUM(v) AS s, COUNT(*) AS c \
        FROM t GROUP BY g;");
  let runs = Obs.Metrics.counter "lint.validate.runs" in
  let before = Obs.Metrics.counter_value runs in
  let _ = Sess.run_query sn (parse "SELECT g, SUM(v) AS s FROM t GROUP BY g") in
  Alcotest.(check int) "no validator runs at level off" before
    (Obs.Metrics.counter_value runs)

(* ---------------- advisor L-codes, end to end ---------------- *)

let advisor_session () =
  let sn = Sess.create () in
  ignore
    (Sess.exec_sql sn
       "CREATE TABLE orders (region VARCHAR NOT NULL, channel VARCHAR, \
        amount INT NOT NULL); \
        INSERT INTO orders VALUES ('e', 'web', 10), ('w', NULL, 3);");
  sn

let diags_of sn name =
  match List.assoc_opt name (Sess.lint_summaries sn) with
  | Some ds -> List.map (fun d -> d.Lint.Advisor.d_code) ds
  | None -> Alcotest.failf "summary %s not found" name

let expect_diag sn name code =
  let cs = diags_of sn name in
  Alcotest.(check bool)
    (Printf.sprintf "%s has %s (got %s)" name code (String.concat "," cs))
    true (List.mem code cs)

let test_advisor_codes () =
  let sn = advisor_session () in
  ignore
    (Sess.exec_sql sn
       "CREATE SUMMARY TABLE avg_only AS SELECT region, AVG(amount) AS a \
        FROM orders GROUP BY region;");
  expect_diag sn "avg_only" "L101";
  expect_diag sn "avg_only" "L103";
  ignore
    (Sess.exec_sql sn
       "CREATE SUMMARY TABLE dist AS SELECT region, COUNT(DISTINCT channel) \
        AS u, COUNT(*) AS c FROM orders GROUP BY region;");
  expect_diag sn "dist" "L102";
  ignore
    (Sess.exec_sql sn
       "CREATE SUMMARY TABLE roll AS SELECT region, channel, SUM(amount) AS \
        s, COUNT(*) AS c FROM orders GROUP BY ROLLUP(region, channel);");
  expect_diag sn "roll" "L104";
  ignore
    (Sess.exec_sql sn
       "CREATE SUMMARY TABLE twin AS SELECT region, SUM(amount) AS s, \
        COUNT(*) AS c FROM orders GROUP BY region;");
  expect_diag sn "twin" "L105"

let test_advisor_clean_definition () =
  let sn = advisor_session () in
  ignore
    (Sess.exec_sql sn
       "CREATE SUMMARY TABLE good AS SELECT region, SUM(amount) AS s, \
        COUNT(*) AS c FROM orders GROUP BY region;");
  Alcotest.(check (list string)) "well-shaped summary is clean" []
    (diags_of sn "good")

let test_create_summary_warns_inline () =
  let sn = advisor_session () in
  let out =
    Sess.exec_sql sn
      "CREATE SUMMARY TABLE avg_only AS SELECT region, AVG(amount) AS a \
       FROM orders GROUP BY region;"
  in
  match out with
  | [ Sess.Msg m ] ->
      Alcotest.(check bool)
        (Printf.sprintf "message carries L101 (got %S)" m)
        true
        (contains m "L101")
  | _ -> Alcotest.fail "expected a single message outcome"

(* ---------------- static containment of Corrupt ---------------- *)

let with_clean_faults f =
  F.disarm_all ();
  Fun.protect ~finally:F.disarm_all f

(* Acceptance: at ASTQL_VALIDATE=2 with runtime verification OFF, an armed
   Corrupt injection is caught *statically*: the ill-formed compensation is
   rejected at plan time with a typed invalid-ir reason, the candidate is
   quarantined, and the query is still answered correctly from the base
   plan. *)
let test_corrupt_caught_statically () =
  with_clean_faults @@ fun () ->
  Lint.Level.with_level Lint.Level.Candidates @@ fun () ->
  let sn = Sess.create () (* verify defaults to Off *) in
  let plain = Sess.create ~rewrite:false () in
  let both sql =
    ignore (Sess.exec_sql sn sql);
    ignore (Sess.exec_sql plain sql)
  in
  both
    "CREATE TABLE t (g INT NOT NULL, v INT NOT NULL); \
     INSERT INTO t VALUES (1, 10), (1, 20), (2, 5), (3, 8); \
     CREATE SUMMARY TABLE m AS SELECT g, SUM(v) AS s, COUNT(*) AS c FROM t \
     GROUP BY g;";
  let q = parse "SELECT g, SUM(v) AS s FROM t GROUP BY g" in
  (* sanity: rewrites when healthy *)
  let _, steps = Sess.run_query sn q in
  Alcotest.(check bool) "rewrites when healthy" true (steps <> []);
  (* new epoch so the cached healthy plan cannot be served *)
  both "INSERT INTO t VALUES (4, 2);";
  let st0 = Sess.stats sn in
  let rejects = Obs.Metrics.counter "lint.candidate_rejects" in
  let r0 = Obs.Metrics.counter_value rejects in
  F.arm F.Corrupt ~after:1;
  let explain = Sess.explain ~verbose:true sn q in
  Alcotest.(check bool) "corrupt fault consumed at plan time" false
    (F.armed F.Corrupt);
  Alcotest.(check bool)
    (Printf.sprintf "typed invalid-ir rejection in EXPLAIN (got %s)" explain)
    true (contains explain "invalid-ir");
  Alcotest.(check bool) "V-code visible in the rejection reason" true
    (contains explain "V10");
  Alcotest.(check bool) "candidate reject metric ticked" true
    (Obs.Metrics.counter_value rejects > r0);
  let st1 = Sess.stats sn in
  Alcotest.(check bool) "candidate quarantined" true
    (st1.P.Stats.quarantined > st0.P.Stats.quarantined);
  (* the corrupted candidate never executes: answer equals rewrite-off *)
  let via, steps = Sess.run_query sn q in
  Alcotest.(check bool) "degraded to base plan" true (steps = []);
  let direct, _ = Sess.run_query plain q in
  Alcotest.(check bool) "result equals rewrite-off session" true
    (Data.Relation.bag_equal_approx via direct)

(* the plan-time corruption site only exists at level 2: at level 1 the
   armed fault is left for the runtime site (test_guard covers it) *)
let test_corrupt_site_respects_level () =
  with_clean_faults @@ fun () ->
  Lint.Level.with_level Lint.Level.Final @@ fun () ->
  let sn = Sess.create () in
  ignore
    (Sess.exec_sql sn
       "CREATE TABLE t (g INT NOT NULL, v INT NOT NULL); \
        INSERT INTO t VALUES (1, 10), (2, 5); \
        CREATE SUMMARY TABLE m AS SELECT g, SUM(v) AS s, COUNT(*) AS c \
        FROM t GROUP BY g;");
  let q = parse "SELECT g, SUM(v) AS s FROM t GROUP BY g" in
  F.arm F.Corrupt ~after:1;
  let _, steps = Sess.run_query sn q in
  Alcotest.(check bool) "rewrite goes through at level 1" true (steps <> []);
  Alcotest.(check bool) "fault consumed by the runtime site" false
    (F.armed F.Corrupt)

let suite =
  [
    Alcotest.test_case "well-formed graph is clean" `Quick
      test_valid_graph_clean;
    Alcotest.test_case "V101 root missing" `Quick test_v101_root_missing;
    Alcotest.test_case "V102 cycle" `Quick test_v102_cycle;
    Alcotest.test_case "V103 dead box" `Quick test_v103_dead_box;
    Alcotest.test_case "V104 foreign quantifier" `Quick test_v104_foreign_quant;
    Alcotest.test_case "V105 unknown column" `Quick test_v105_unknown_column;
    Alcotest.test_case "V106 duplicate outputs" `Quick
      test_v106_duplicate_outputs;
    Alcotest.test_case "V107 aggregate in SELECT" `Quick test_v107_agg_in_select;
    Alcotest.test_case "V108 bad grouping key" `Quick test_v108_bad_grouping_key;
    Alcotest.test_case "V109 aggregate arity" `Quick test_v109_agg_arity;
    Alcotest.test_case "V110 union arity" `Quick test_v110_union_arity;
    Alcotest.test_case "V111 scalar under GROUP BY" `Quick
      test_v111_scalar_group_child;
    Alcotest.test_case "V112 distinct COUNT(*)" `Quick
      test_v112_count_star_distinct;
    Alcotest.test_case "V113 non-canonical grouping sets" `Quick
      test_v113_non_canonical_gsets;
    Alcotest.test_case "V114 presentation" `Quick test_v114_presentation;
    Alcotest.test_case "V115 non-boolean predicate" `Quick
      test_v115_non_boolean_predicate;
    Alcotest.test_case "V116 no outputs" `Quick test_v116_no_outputs;
    Alcotest.test_case "V117 no quantifiers" `Quick test_v117_no_quantifiers;
    Alcotest.test_case "builder output is clean" `Quick
      test_builder_output_clean;
    Alcotest.test_case "level knob parsing" `Quick test_level_parsing;
    Alcotest.test_case "level off costs nothing" `Quick test_off_is_free;
    Alcotest.test_case "advisor L-codes" `Quick test_advisor_codes;
    Alcotest.test_case "advisor clean definition" `Quick
      test_advisor_clean_definition;
    Alcotest.test_case "CREATE SUMMARY warns inline" `Quick
      test_create_summary_warns_inline;
    Alcotest.test_case "corrupt caught statically" `Quick
      test_corrupt_caught_statically;
    Alcotest.test_case "corrupt site respects level" `Quick
      test_corrupt_site_respects_level;
  ]
