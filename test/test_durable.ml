(* The durability subsystem: CRC vectors, WAL framing and torn-tail
   tolerance, checkpoint atomicity and decode-or-skip, and manager
   recovery end to end — checkpoint + WAL suffix replay, statement
   rollback never resurrected, corrupted summary payloads degraded to
   quarantine instead of refusing to boot. *)

module J = Obs.Json
module R = Data.Relation
module V = Data.Value
module W = Durable.Wal
module Ck = Durable.Checkpoint
module M = Durable.Manager
module Sess = Mvstore.Session

let tmpdir () =
  let d = Filename.temp_file "astql-durable" "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let file_size path = (Unix.stat path).Unix.st_size

let append_raw path s =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
  in
  let b = Bytes.unsafe_of_string s in
  let n = Unix.write fd b 0 (Bytes.length b) in
  assert (n = Bytes.length b);
  Unix.close fd

let table_of sess sql =
  match Sess.exec_sql sess sql with
  | [ Sess.Table rel ] -> rel
  | _ -> Alcotest.failf "expected one table from %s" sql

(* --- CRC-32 ------------------------------------------------------------- *)

let test_crc32 () =
  (* the standard check value for CRC-32/ISO-HDLC *)
  Alcotest.(check int)
    "123456789" 0xCBF43926
    (Durable.Crc32.string "123456789");
  Alcotest.(check int) "empty" 0 (Durable.Crc32.string "");
  Alcotest.(check int)
    "sub window"
    (Durable.Crc32.string "456")
    (Durable.Crc32.sub "123456789" 3 3);
  (* incremental sanity: different inputs, different sums *)
  Alcotest.(check bool)
    "distinguishes" false
    (Durable.Crc32.string "hello" = Durable.Crc32.string "hellp")

(* --- fsync policy parsing ----------------------------------------------- *)

let test_fsync_policy () =
  let ok s p =
    match W.fsync_policy_of_string s with
    | Ok p' -> Alcotest.(check bool) s true (p = p')
    | Error m -> Alcotest.failf "%s: %s" s m
  in
  ok "always" W.Always;
  ok "off" W.Off;
  ok "none" W.Off;
  ok "interval:4" (W.Interval 4);
  ok "interval=4" (W.Interval 4);
  ok "7" (W.Interval 7);
  List.iter
    (fun s ->
      match W.fsync_policy_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "should not parse: %s" s)
    [ "sometimes"; "interval:0"; "interval:-1"; "0"; "" ]

(* --- WAL ---------------------------------------------------------------- *)

let test_wal_roundtrip () =
  let dir = tmpdir () in
  let path = Filename.concat dir "wal.log" in
  let recs =
    [
      J.Obj [ ("lsn", J.Int 1); ("kind", J.Str "sql") ];
      J.Obj [ ("lsn", J.Int 2); ("sql", J.Str "… utf8 é😀 \" quoted") ];
      J.List [ J.Null; J.Bool true; J.Int (-3) ];
    ]
  in
  let w = W.open_writer ~policy:W.Off path in
  List.iter (W.append w) recs;
  W.close w;
  let r = W.read path in
  Alcotest.(check int) "records" 3 (List.length r.W.records);
  Alcotest.(check int) "torn" 0 r.W.torn_bytes;
  Alcotest.(check int) "valid = size" (file_size path) r.W.valid_bytes;
  List.iter2
    (fun a b ->
      Alcotest.(check string) "payload" (J.to_string a) (J.to_string b))
    recs r.W.records

let test_wal_missing_reads_empty () =
  let dir = tmpdir () in
  let r = W.read (Filename.concat dir "nothing-here.log") in
  Alcotest.(check int) "records" 0 (List.length r.W.records);
  Alcotest.(check int) "valid" 0 r.W.valid_bytes

let test_wal_torn_tail () =
  let dir = tmpdir () in
  let path = Filename.concat dir "wal.log" in
  let w = W.open_writer ~policy:W.Off path in
  W.append w (J.Obj [ ("lsn", J.Int 1) ]);
  W.append w (J.Obj [ ("lsn", J.Int 2) ]);
  W.close w;
  let whole = file_size path in
  (* a process killed mid-append leaves a prefix of a frame *)
  let torn = W.frame (J.Obj [ ("lsn", J.Int 3) ]) in
  append_raw path (String.sub torn 0 (String.length torn - 4));
  let r = W.read path in
  Alcotest.(check int) "records survive" 2 (List.length r.W.records);
  Alcotest.(check int) "valid prefix" whole r.W.valid_bytes;
  Alcotest.(check bool) "torn tail seen" true (r.W.torn_bytes > 0);
  (* recovery truncates the tail; the log reads clean afterwards *)
  W.truncate path r.W.valid_bytes;
  let r2 = W.read path in
  Alcotest.(check int) "clean after truncate" 0 r2.W.torn_bytes;
  Alcotest.(check int) "records kept" 2 (List.length r2.W.records);
  (* appending resumes where the truncate left off *)
  let w2 = W.open_writer ~policy:W.Off path in
  W.append w2 (J.Obj [ ("lsn", J.Int 3) ]);
  W.close w2;
  Alcotest.(check int)
    "resumed" 3
    (List.length (W.read path).W.records)

let test_wal_mid_corruption_ends_log () =
  let dir = tmpdir () in
  let path = Filename.concat dir "wal.log" in
  let w = W.open_writer ~policy:W.Off path in
  W.append w (J.Obj [ ("lsn", J.Int 1) ]);
  let keep = file_size path in
  W.append w (J.Obj [ ("lsn", J.Int 2) ]);
  W.append w (J.Obj [ ("lsn", J.Int 3) ]);
  W.close w;
  (* flip one payload byte inside record 2: its CRC no longer matches, so
     the log ends at record 1 — everything after is unreachable *)
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  ignore (Unix.lseek fd (keep + 20) Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.of_string "#") 0 1);
  Unix.close fd;
  let r = W.read path in
  Alcotest.(check int) "prefix only" 1 (List.length r.W.records);
  Alcotest.(check int) "valid stops before corruption" keep r.W.valid_bytes;
  Alcotest.(check int)
    "rest is torn"
    (file_size path - keep)
    r.W.torn_bytes

let test_wal_replace () =
  let dir = tmpdir () in
  let path = Filename.concat dir "wal.log" in
  let w = W.open_writer ~policy:W.Off path in
  List.iter (fun n -> W.append w (J.Int n)) [ 1; 2; 3; 4 ];
  W.close w;
  W.replace path [ J.Int 9 ];
  (match (W.read path).W.records with
  | [ J.Int 9 ] -> ()
  | _ -> Alcotest.fail "replace should leave exactly the given records");
  W.replace path [];
  Alcotest.(check int) "emptied" 0 (file_size path)

(* --- checkpoints -------------------------------------------------------- *)

let sample_checkpoint () =
  let col name ty nullable = { Catalog.col_name = name; col_ty = ty; nullable } in
  {
    Ck.ck_lsn = 7;
    ck_tables =
      [
        {
          Ck.ck_table =
            {
              Catalog.tbl_name = "t";
              tbl_cols =
                [ col "a" V.Tint false; col "b" V.Tint true; col "s" V.Tstr true ];
              primary_key = [ "a" ];
              unique_keys = [ [ "s" ] ];
              foreign_keys = [];
            };
          ck_rows =
            [
              [| V.Int 1; V.Int 10; V.Str "x" |];
              [| V.Int 2; V.Null; V.Null |];
              [| V.Int 3; V.Int 30; V.Str "é😀" |];
            ];
        };
      ];
    ck_summaries =
      [
        {
          Ck.ck_name = "s1";
          ck_sql = "SELECT a, SUM(b) AS sb FROM t GROUP BY a";
          ck_fresh = true;
          ck_srows = [ [| V.Int 1; V.Int 10 |] ];
        };
      ];
  }

let test_checkpoint_roundtrip () =
  let dir = tmpdir () in
  let t = sample_checkpoint () in
  Ck.write dir t;
  match Ck.load_latest dir with
  | Some t', 0 ->
      Alcotest.(check int) "lsn" t.Ck.ck_lsn t'.Ck.ck_lsn;
      Alcotest.(check string)
        "encode fixpoint"
        (J.to_string (Ck.to_json t))
        (J.to_string (Ck.to_json t'))
  | Some _, n -> Alcotest.failf "unexpected %d skipped" n
  | None, _ -> Alcotest.fail "checkpoint did not load"

let test_checkpoint_skips_invalid () =
  let dir = tmpdir () in
  let t = sample_checkpoint () in
  Ck.write dir t;
  (* a newer checkpoint corrupted in place fails decode and is skipped in
     favour of the older good one *)
  Out_channel.with_open_text (Filename.concat dir "ckpt-99.json") (fun oc ->
      Out_channel.output_string oc "{ not json");
  (match Ck.load_latest dir with
  | Some t', skipped ->
      Alcotest.(check int) "fell back" 7 t'.Ck.ck_lsn;
      Alcotest.(check int) "skipped the bad one" 1 skipped
  | None, _ -> Alcotest.fail "should fall back to the older checkpoint");
  (* a torn temp file never carries the real name, so it is ignored *)
  Out_channel.with_open_text (Filename.concat dir "ckpt-100.json.tmp")
    (fun oc -> Out_channel.output_string oc "{\"half\":");
  match Ck.load_latest dir with
  | Some t', _ -> Alcotest.(check int) "tmp invisible" 7 t'.Ck.ck_lsn
  | None, _ -> Alcotest.fail "tmp file must not shadow the checkpoint"

let test_checkpoint_prune () =
  let dir = tmpdir () in
  List.iter
    (fun lsn -> Ck.write dir { (sample_checkpoint ()) with Ck.ck_lsn = lsn })
    [ 1; 2; 3; 4 ];
  let names = Sys.readdir dir |> Array.to_list |> List.sort compare in
  Alcotest.(check (list string))
    "newest two survive"
    [ "ckpt-3.json"; "ckpt-4.json" ]
    names

(* --- manager: recovery end to end --------------------------------------- *)

let cfg_of dir ?(every = 2) () =
  { M.c_dir = dir; c_fsync = W.Off; c_checkpoint_every = every }

let seed_sql =
  "CREATE TABLE t (a INT NOT NULL, b INT); \
   INSERT INTO t VALUES (1, 10), (2, 20); \
   CREATE SUMMARY TABLE s AS SELECT a, SUM(b) AS sb, COUNT(*) AS n FROM t \
   GROUP BY a; \
   INSERT INTO t VALUES (3, 30); \
   INSERT INTO t VALUES (4, 40);"

let query = "SELECT a, SUM(b) AS sb FROM t GROUP BY a ORDER BY a;"

let test_recover_checkpoint_plus_suffix () =
  let dir = tmpdir () in
  (* first life: checkpoint_every 2 guarantees a mid-run checkpoint, and
     skipping the final checkpoint leaves a WAL suffix to replay *)
  let mgr, shared, _ = M.recover (cfg_of dir ()) in
  let sess = Sess.attach shared in
  M.bind mgr sess;
  ignore (Sess.exec_sql sess seed_sql);
  let expected = table_of sess query in
  Alcotest.(check bool) "commits logged" true (M.last_lsn mgr >= 5);
  Alcotest.(check bool)
    "auto checkpoint ran"
    true
    (M.checkpoint_lsn mgr > 0 && M.checkpoint_lsn mgr < M.last_lsn mgr);
  M.close mgr;
  (* second life *)
  let mgr2, shared2, report = M.recover (cfg_of dir ()) in
  Alcotest.(check bool) "suffix replayed" true (report.M.r_replayed > 0);
  Alcotest.(check int) "no replay errors" 0 report.M.r_replay_errors;
  Alcotest.(check (list string)) "nothing quarantined" [] report.M.r_quarantined;
  let sess2 = Sess.attach shared2 in
  Helpers.check_rows "data equal after recovery" expected (table_of sess2 query);
  (match Mvstore.Store.find (Sess.store sess2) "s" with
  | Some e -> Alcotest.(check bool) "summary restored fresh" true e.Mvstore.Store.e_fresh
  | None -> Alcotest.fail "summary table lost in recovery");
  (* recovered state keeps accepting and logging writes *)
  let sess2 = Sess.attach shared2 in
  M.bind mgr2 sess2;
  ignore (Sess.exec_sql sess2 "INSERT INTO t VALUES (5, 50);");
  Alcotest.(check bool) "lsn advances" true (M.last_lsn mgr2 > 5);
  M.close mgr2

let test_recover_from_wal_only () =
  let dir = tmpdir () in
  (* checkpoint_every 0: nothing but the WAL survives the first life *)
  let mgr, shared, _ = M.recover (cfg_of dir ~every:0 ()) in
  let sess = Sess.attach shared in
  M.bind mgr sess;
  ignore (Sess.exec_sql sess seed_sql);
  let expected = table_of sess query in
  M.close mgr;
  let _, shared2, report = M.recover (cfg_of dir ~every:0 ()) in
  Alcotest.(check (option int)) "no checkpoint" None report.M.r_ckpt_lsn;
  Alcotest.(check int) "all records replayed" 5 report.M.r_replayed;
  let sess2 = Sess.attach shared2 in
  Helpers.check_rows "replay rebuilt the db" expected (table_of sess2 query)

let test_rolled_back_statement_never_replayed () =
  let dir = tmpdir () in
  let mgr, shared, _ = M.recover (cfg_of dir ~every:0 ()) in
  let sess = Sess.attach shared in
  M.bind mgr sess;
  ignore
    (Sess.exec_sql sess
       "CREATE TABLE t (a INT NOT NULL); INSERT INTO t VALUES (1);");
  let lsn_before = M.last_lsn mgr in
  (* the statement fails its integrity check and rolls back — the hook
     must never have run, so the WAL must not move *)
  (try ignore (Sess.exec_sql sess "INSERT INTO t VALUES (2), (NULL);")
   with Sess.Session_error _ -> ());
  Alcotest.(check int) "no record for rollback" lsn_before (M.last_lsn mgr);
  M.close mgr;
  let _, shared2, report = M.recover (cfg_of dir ~every:0 ()) in
  Alcotest.(check int) "replay clean" 0 report.M.r_replay_errors;
  let sess2 = Sess.attach shared2 in
  Helpers.check_rows "rolled-back row absent"
    (R.create [ "a" ] [ [| V.Int 1 |] ])
    (table_of sess2 "SELECT a FROM t;")

let test_copy_from_replayed_as_rows () =
  let dir = tmpdir () in
  let csv = Filename.temp_file "astql" ".csv" in
  Out_channel.with_open_text csv (fun oc ->
      Out_channel.output_string oc "a,b\n1,10\n2,\n3,30\n");
  let mgr, shared, _ = M.recover (cfg_of dir ~every:0 ()) in
  let sess = Sess.attach shared in
  M.bind mgr sess;
  ignore (Sess.exec_sql sess "CREATE TABLE t (a INT NOT NULL, b INT);");
  ignore
    (Sess.exec_sql sess (Printf.sprintf "COPY t FROM '%s' WITH HEADER;" csv));
  let expected = table_of sess "SELECT a, b FROM t;" in
  M.close mgr;
  (* the CSV file is gone by the time recovery replays the statement — the
     WAL logged the rows themselves, not the filename *)
  Sys.remove csv;
  let _, shared2, report = M.recover (cfg_of dir ~every:0 ()) in
  Alcotest.(check int) "replay clean" 0 report.M.r_replay_errors;
  let sess2 = Sess.attach shared2 in
  Helpers.check_rows "rows survive without the file" expected
    (table_of sess2 "SELECT a, b FROM t;")

let test_corrupt_payload_quarantined () =
  let dir = tmpdir () in
  let col name ty nullable = { Catalog.col_name = name; col_ty = ty; nullable } in
  let ck =
    {
      Ck.ck_lsn = 3;
      ck_tables =
        [
          {
            Ck.ck_table =
              {
                Catalog.tbl_name = "t";
                tbl_cols = [ col "a" V.Tint false; col "b" V.Tint true ];
                primary_key = [];
                unique_keys = [];
                foreign_keys = [];
              };
            ck_rows = [ [| V.Int 1; V.Int 10 |]; [| V.Int 2; V.Int 20 |] ];
          };
        ];
      ck_summaries =
        [
          {
            Ck.ck_name = "s";
            ck_sql =
              "SELECT a, SUM(b) AS sb, COUNT(*) AS n FROM t GROUP BY a";
            ck_fresh = true;
            (* bit rot: the stored payload disagrees with re-derivation *)
            ck_srows = [ [| V.Int 1; V.Int 999; V.Int 1 |] ];
          };
        ];
    }
  in
  Ck.write dir ck;
  let _, shared, report = M.recover (cfg_of dir ()) in
  Alcotest.(check (list string))
    "summary quarantined" [ "s" ] report.M.r_quarantined;
  let sess = Sess.attach shared in
  (match Mvstore.Store.find (Sess.store sess) "s" with
  | Some e ->
      Alcotest.(check bool) "stale, not fresh" false e.Mvstore.Store.e_fresh
  | None -> Alcotest.fail "quarantine must keep the definition");
  (* queries stay correct: the quarantined summary is not used for rewrite *)
  Helpers.check_rows "base answers remain right"
    (R.create [ "a"; "sb" ] [ [| V.Int 1; V.Int 10 |]; [| V.Int 2; V.Int 20 |] ])
    (table_of sess "SELECT a, SUM(b) AS sb FROM t GROUP BY a;");
  (* and the ordinary rebuild path restores it *)
  ignore (Sess.exec_sql sess "REFRESH SUMMARY TABLE s;");
  match Mvstore.Store.find (Sess.store sess) "s" with
  | Some e -> Alcotest.(check bool) "fresh again" true e.Mvstore.Store.e_fresh
  | None -> Alcotest.fail "summary lost by refresh"

let test_undecodable_summary_dropped () =
  let dir = tmpdir () in
  let col name ty nullable = { Catalog.col_name = name; col_ty = ty; nullable } in
  let ck =
    {
      Ck.ck_lsn = 1;
      ck_tables =
        [
          {
            Ck.ck_table =
              {
                Catalog.tbl_name = "t";
                tbl_cols = [ col "a" V.Tint false ];
                primary_key = [];
                unique_keys = [];
                foreign_keys = [];
              };
            ck_rows = [ [| V.Int 1 |] ];
          };
        ];
      ck_summaries =
        [
          {
            Ck.ck_name = "ghost";
            ck_sql = "SELECT x FROM vanished GROUP BY x";
            ck_fresh = true;
            ck_srows = [];
          };
        ];
    }
  in
  Ck.write dir ck;
  (* a summary whose definition no longer elaborates is dropped; recovery
     never refuses to boot over derived state *)
  let _, shared, report = M.recover (cfg_of dir ()) in
  Alcotest.(check (list string)) "dropped" [ "ghost" ] report.M.r_dropped;
  let sess = Sess.attach shared in
  Helpers.check_rows "base table intact"
    (R.create [ "a" ] [ [| V.Int 1 |] ])
    (table_of sess "SELECT a FROM t;")

let test_torn_wal_tail_recovery () =
  let dir = tmpdir () in
  let mgr, shared, _ = M.recover (cfg_of dir ~every:0 ()) in
  let sess = Sess.attach shared in
  M.bind mgr sess;
  ignore
    (Sess.exec_sql sess
       "CREATE TABLE t (a INT NOT NULL); INSERT INTO t VALUES (1);");
  M.close mgr;
  (* a kill mid-append leaves half a frame; recovery truncates it away and
     keeps every whole record *)
  append_raw (Filename.concat dir "wal.log")
    (String.sub (W.frame (J.Str "torn")) 0 9);
  let _, shared2, report = M.recover (cfg_of dir ~every:0 ()) in
  Alcotest.(check bool) "torn bytes reported" true (report.M.r_torn_bytes > 0);
  Alcotest.(check int) "whole records replayed" 2 report.M.r_replayed;
  let sess2 = Sess.attach shared2 in
  Helpers.check_rows "state correct"
    (R.create [ "a" ] [ [| V.Int 1 |] ])
    (table_of sess2 "SELECT a FROM t;")

let test_config_of_env () =
  (* config_of_env reads ASTQL_DURABILITY/ASTQL_FSYNC/ASTQL_CHECKPOINT_EVERY;
     keep the environment clean for the other tests *)
  let with_env kvs f =
    let olds = List.map (fun (k, _) -> (k, Sys.getenv_opt k)) kvs in
    List.iter (fun (k, v) -> Unix.putenv k v) kvs;
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun (k, old) -> Unix.putenv k (Option.value old ~default:""))
          olds)
      f
  in
  (match M.config_of_env () with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "durability should default to off"
  | Error m -> Alcotest.fail m);
  with_env
    [
      ("ASTQL_DURABILITY", "/tmp/d");
      ("ASTQL_FSYNC", "interval:8");
      ("ASTQL_CHECKPOINT_EVERY", "16");
    ]
    (fun () ->
      match M.config_of_env () with
      | Ok (Some c) ->
          Alcotest.(check string) "dir" "/tmp/d" c.M.c_dir;
          Alcotest.(check bool) "fsync" true (c.M.c_fsync = W.Interval 8);
          Alcotest.(check int) "every" 16 c.M.c_checkpoint_every
      | Ok None -> Alcotest.fail "should be on"
      | Error m -> Alcotest.fail m);
  with_env [ ("ASTQL_DURABILITY", "/tmp/d"); ("ASTQL_FSYNC", "banana") ]
    (fun () ->
      match M.config_of_env () with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "bad ASTQL_FSYNC must be rejected")

let suite =
  [
    Alcotest.test_case "crc32 vectors" `Quick test_crc32;
    Alcotest.test_case "fsync policy parsing" `Quick test_fsync_policy;
    Alcotest.test_case "wal roundtrip" `Quick test_wal_roundtrip;
    Alcotest.test_case "wal missing file reads empty" `Quick
      test_wal_missing_reads_empty;
    Alcotest.test_case "wal torn tail" `Quick test_wal_torn_tail;
    Alcotest.test_case "wal mid-file corruption ends log" `Quick
      test_wal_mid_corruption_ends_log;
    Alcotest.test_case "wal replace" `Quick test_wal_replace;
    Alcotest.test_case "checkpoint roundtrip" `Quick test_checkpoint_roundtrip;
    Alcotest.test_case "checkpoint skips invalid" `Quick
      test_checkpoint_skips_invalid;
    Alcotest.test_case "checkpoint prune" `Quick test_checkpoint_prune;
    Alcotest.test_case "recover checkpoint + wal suffix" `Quick
      test_recover_checkpoint_plus_suffix;
    Alcotest.test_case "recover from wal only" `Quick test_recover_from_wal_only;
    Alcotest.test_case "rolled-back statement never replayed" `Quick
      test_rolled_back_statement_never_replayed;
    Alcotest.test_case "copy-from replayed as rows" `Quick
      test_copy_from_replayed_as_rows;
    Alcotest.test_case "corrupt summary payload quarantined" `Quick
      test_corrupt_payload_quarantined;
    Alcotest.test_case "undecodable summary dropped" `Quick
      test_undecodable_summary_dropped;
    Alcotest.test_case "torn wal tail recovery" `Quick test_torn_wal_tail_recovery;
    Alcotest.test_case "config from environment" `Quick test_config_of_env;
  ]
