(* Executor semantics: joins with NULLs, 3VL filtering, aggregates,
   DISTINCT, grouping sets (the paper's Figure 12 table), scalar
   subqueries, presentation. *)

module R = Data.Relation
module V = Data.Value
open Helpers

let db () = tiny_db ()

let test_filter_3vl () =
  (* v > 6 must drop the NULL v row, not keep it *)
  let r = run (db ()) "select k from fact where v > 6" in
  Alcotest.(check (list (list string)))
    "rows" [ [ "1" ]; [ "2" ]; [ "5" ]; [ "6" ] ]
    (List.map (List.map V.to_string) (sorted_rows r))

let test_join_basic () =
  let r =
    run (db ())
      "select label, count(*) as c from fact, dims where dim = id group by \
       label order by label"
  in
  Alcotest.(check (list (list string)))
    "join groups"
    [ [ "a"; "2" ]; [ "b"; "2" ]; [ "c"; "2" ] ]
    (List.map (List.map V.to_string) (List.map Array.to_list (R.rows r)))

let test_join_null_keys_dont_match () =
  let cat = tiny_catalog () in
  let dims =
    R.create [ "id"; "label"; "region" ] [ [| i 1; s "a"; s "e" |] ]
  in
  let fact =
    R.create [ "k"; "dim"; "grp"; "v" ]
      [ [| i 1; i 1; s "x"; i 1 |]; [| i 2; i 1; s "x"; V.Null |] ]
  in
  let db = Engine.Db.of_tables cat [ ("dims", dims); ("fact", fact) ] in
  (* join on v = id: NULL v must not join with anything *)
  let r = run db "select k from fact, dims where v = id" in
  Alcotest.(check int) "null join key drops" 1 (R.cardinality r)

let test_cross_product () =
  let r = run (db ()) "select fact.k as k, dims.id as d from fact, dims" in
  Alcotest.(check int) "6*3 rows" 18 (R.cardinality r)

let test_aggregates () =
  let r =
    run (db ())
      "select grp, count(*) as c, count(v) as cv, sum(v) as sv, min(v) as mn, \
       max(v) as mx, avg(v) as av from fact group by grp order by grp"
  in
  Alcotest.(check (list (list string)))
    "all aggregates"
    [
      [ "x"; "3"; "2"; "30"; "10"; "20"; "15.0" ];
      [ "y"; "3"; "3"; "19"; "5"; "7"; "6.33333" ];
    ]
    (List.map (List.map V.to_string) (List.map Array.to_list (R.rows r)))

let test_distinct_aggregates () =
  let r =
    run (db ())
      "select grp, count(distinct v) as dv, sum(distinct v) as sdv from fact \
       group by grp order by grp"
  in
  Alcotest.(check (list (list string)))
    "distinct aggregates"
    [ [ "x"; "2"; "30" ]; [ "y"; "2"; "12" ] ]
    (List.map (List.map V.to_string) (List.map Array.to_list (R.rows r)))

let test_grand_total_empty_input () =
  let r = run (db ()) "select count(*) as c, sum(v) as sv from fact where v > 1000" in
  Alcotest.(check (list (list string)))
    "one row, count 0, sum null"
    [ [ "0"; "NULL" ] ]
    (List.map (List.map V.to_string) (List.map Array.to_list (R.rows r)))

let test_grouped_empty_input () =
  let r = run (db ()) "select grp, count(*) as c from fact where v > 1000 group by grp" in
  Alcotest.(check int) "no groups" 0 (R.cardinality r)

let test_select_distinct () =
  let r = run (db ()) "select distinct grp from fact" in
  Alcotest.(check int) "two values" 2 (R.cardinality r)

let test_scalar_subquery () =
  let r = run (db ()) "select k, v * (select count(*) from dims) as t from fact where k = 1" in
  Alcotest.(check (list (list string)))
    "scaled" [ [ "1"; "30" ] ]
    (List.map (List.map V.to_string) (List.map Array.to_list (R.rows r)))

let test_scalar_subquery_empty_is_null () =
  let r =
    run (db ())
      "select k, (select id from dims where label = 'nope') as missing from \
       fact where k = 1"
  in
  Alcotest.(check (list (list string)))
    "null scalar" [ [ "1"; "NULL" ] ]
    (List.map (List.map V.to_string) (List.map Array.to_list (R.rows r)))

let test_order_limit () =
  let r = run (db ()) "select k from fact order by k desc limit 2" in
  Alcotest.(check (list (list string)))
    "top 2 desc" [ [ "6" ]; [ "5" ] ]
    (List.map (List.map V.to_string) (List.map Array.to_list (R.rows r)))

(* The paper's Figure 12: grouping-sets semantics on the sample table. *)
let fig12_catalog () =
  Catalog.add_table Catalog.empty
    {
      Catalog.tbl_name = "T";
      tbl_cols =
        [
          { Catalog.col_name = "flid"; col_ty = V.Tint; nullable = false };
          { Catalog.col_name = "year"; col_ty = V.Tint; nullable = false };
          { Catalog.col_name = "faid"; col_ty = V.Tint; nullable = false };
        ];
      primary_key = [];
      unique_keys = [];
      foreign_keys = [];
    }

let fig12_rows =
  [
    [| i 1; i 1990; i 100 |];
    [| i 1; i 1991; i 100 |];
    [| i 1; i 1991; i 200 |];
    [| i 1; i 1991; i 300 |];
    [| i 1; i 1992; i 100 |];
    [| i 1; i 1992; i 400 |];
    [| i 2; i 1991; i 400 |];
    [| i 2; i 1991; i 400 |];
  ]

let test_figure12 () =
  let db =
    Engine.Db.of_tables (fig12_catalog ())
      [ ("T", R.create [ "flid"; "year"; "faid" ] fig12_rows) ]
  in
  let r =
    run db
      "select flid, year, faid, count(*) as cnt from T group by grouping \
       sets((flid, year), (flid, faid))"
  in
  let expected =
    R.create [ "flid"; "year"; "faid"; "cnt" ]
      [
        (* (flid, year) cuboid *)
        [| i 1; i 1990; V.Null; i 1 |];
        [| i 1; i 1991; V.Null; i 3 |];
        [| i 1; i 1992; V.Null; i 2 |];
        [| i 2; i 1991; V.Null; i 2 |];
        (* (flid, faid) cuboid *)
        [| i 1; V.Null; i 100; i 3 |];
        [| i 1; V.Null; i 200; i 1 |];
        [| i 1; V.Null; i 300; i 1 |];
        [| i 1; V.Null; i 400; i 1 |];
        [| i 2; V.Null; i 400; i 2 |];
      ]
  in
  check_rows "figure 12 cuboids" expected r

let test_rollup_execution () =
  let db =
    Engine.Db.of_tables (fig12_catalog ())
      [ ("T", R.create [ "flid"; "year"; "faid" ] fig12_rows) ]
  in
  let r =
    run db "select flid, year, count(*) as cnt from T group by rollup(flid, year)"
  in
  (* 4 (flid,year) + 2 (flid) + 1 () = 7 rows *)
  Alcotest.(check int) "rollup rows" 7 (R.cardinality r);
  let grand =
    List.filter
      (fun row -> row.(0) = V.Null && row.(1) = V.Null)
      (R.rows r)
  in
  Alcotest.(check (list (list string)))
    "grand total" [ [ "NULL"; "NULL"; "8" ] ]
    (List.map (List.map V.to_string) (List.map Array.to_list grand))

let test_having () =
  let r =
    run (db ()) "select grp, count(v) as c from fact group by grp having count(v) > 2"
  in
  Alcotest.(check (list (list string)))
    "having filters groups" [ [ "y"; "3" ] ]
    (List.map (List.map V.to_string) (List.map Array.to_list (R.rows r)))

let test_scan_error () =
  let cat = tiny_catalog () in
  let db = Engine.Db.of_tables cat [] in
  match run db "select k from fact" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "missing table contents should fail"

(* NaN is a float value, not NULL. The aggregate accumulators once tested
   for "no value yet" with structural (=) against V.Null — harmless until a
   NaN arrives, because (=) on nan is false even against itself. Every
   engine must count NaN as present, let it poison SUM/AVG, and order it
   with the same total order (Float.compare: nan below every number, so
   MIN picks it and MAX ignores it). *)
let test_nan_aggregates () =
  let cat =
    Catalog.(
      add_table empty
        {
          tbl_name = "m";
          tbl_cols =
            [
              { col_name = "g"; col_ty = V.Tint; nullable = false };
              { col_name = "x"; col_ty = V.Tfloat; nullable = true };
            ];
          primary_key = [];
          unique_keys = [];
          foreign_keys = [];
        })
  in
  let rel =
    R.create [ "g"; "x" ]
      [
        [| i 1; f 1.5 |];
        [| i 1; f Float.nan |];
        [| i 2; f Float.nan |];
        [| i 2; V.Null |];
        [| i 2; f 2.0 |];
      ]
  in
  let db = Engine.Db.of_tables cat [ ("m", rel) ] in
  let sql =
    "SELECT g, COUNT(x) AS c, SUM(x) AS s, MIN(x) AS mn, MAX(x) AS mx, \
     AVG(x) AS a FROM m GROUP BY g"
  in
  let vec = Engine.Exec.with_engine Engine.Exec.Vector (fun () -> run db sql) in
  let row = Engine.Exec.with_engine Engine.Exec.Row (fun () -> run db sql) in
  let orc = Engine.Reference.run db (build cat sql) in
  (* bag_equal_approx can't see NaN = NaN (abs-diff on nan is false), so
     compare under the polymorphic total order instead *)
  let same what a b =
    Alcotest.(check bool) what true (compare (sorted_rows a) (sorted_rows b) = 0)
  in
  same "vector = row over NaN" vec row;
  same "vector = reference over NaN" vec orc;
  let checked = ref 0 in
  List.iter
    (fun r ->
      let is_nan what = function
        | V.Float x -> Alcotest.(check bool) what true (Float.is_nan x)
        | v -> Alcotest.failf "%s: got %s" what (V.to_string v)
      in
      match Array.to_list r with
      | [ V.Int 1; V.Int c; s; mn; V.Float mx; a ] ->
          incr checked;
          Alcotest.(check int) "COUNT includes NaN" 2 c;
          is_nan "SUM poisoned by NaN" s;
          is_nan "MIN orders NaN below all" mn;
          Alcotest.(check (float 1e-9)) "MAX skips NaN" 1.5 mx;
          is_nan "AVG poisoned by NaN" a
      | [ V.Int 2; V.Int c; _; _; _; _ ] ->
          incr checked;
          (* NULL excluded, NaN counted *)
          Alcotest.(check int) "COUNT: NULL out, NaN in" 2 c
      | _ -> Alcotest.failf "unexpected row shape in %s" (R.to_string vec))
    (R.rows vec);
  Alcotest.(check int) "both groups present" 2 !checked

let suite =
  [
    Alcotest.test_case "3vl filtering" `Quick test_filter_3vl;
    Alcotest.test_case "hash join" `Quick test_join_basic;
    Alcotest.test_case "null join keys" `Quick test_join_null_keys_dont_match;
    Alcotest.test_case "cross product" `Quick test_cross_product;
    Alcotest.test_case "aggregates" `Quick test_aggregates;
    Alcotest.test_case "distinct aggregates" `Quick test_distinct_aggregates;
    Alcotest.test_case "grand total over empty" `Quick test_grand_total_empty_input;
    Alcotest.test_case "grouped empty input" `Quick test_grouped_empty_input;
    Alcotest.test_case "select distinct" `Quick test_select_distinct;
    Alcotest.test_case "scalar subquery" `Quick test_scalar_subquery;
    Alcotest.test_case "empty scalar subquery" `Quick
      test_scalar_subquery_empty_is_null;
    Alcotest.test_case "order by / limit" `Quick test_order_limit;
    Alcotest.test_case "figure 12 grouping sets" `Quick test_figure12;
    Alcotest.test_case "rollup execution" `Quick test_rollup_execution;
    Alcotest.test_case "having" `Quick test_having;
    Alcotest.test_case "missing contents" `Quick test_scan_error;
    Alcotest.test_case "NaN aggregates across engines" `Quick
      test_nan_aggregates;
  ]
