let () =
  Alcotest.run "astrw"
    [
      ("value", Test_value.suite);
      ("relation", Test_relation.suite);
      ("catalog", Test_catalog.suite);
      ("lexer", Test_lexer.suite);
      ("parser", Test_parser.suite);
      ("expr", Test_expr.suite);
      ("builder", Test_builder.suite);
      ("exec", Test_exec.suite);
      ("equiv", Test_equiv.suite);
      ("subsume", Test_subsume.suite);
      ("props", Test_props.suite);
      ("patterns", Test_patterns.suite);
      ("paper-figures", Test_paper_figures.suite);
      ("rewrite", Test_rewrite.suite);
      ("unparse", Test_unparse.suite);
      ("store", Test_store.suite);
      ("session", Test_session.suite);
      ("advisor", Test_advisor.suite);
      ("lint", Test_lint.suite);
      ("random-rewrites", Test_random_rewrites.suite);
      ("differential", Test_differential.suite);
      ("distinct-group", Test_distinct_group.suite);
      ("delete", Test_delete.suite);
      ("csv", Test_csv.suite);
      ("cost", Test_cost.suite);
      ("integration", Test_integration.suite);
      ("decision-support", Test_decision_support.suite);
      ("union", Test_union.suite);
      ("fingerprint", Test_fingerprint.suite);
      ("plancache", Test_plancache.suite);
      ("guard", Test_guard.suite);
      ("govern", Test_govern.suite);
      ("obs", Test_obs.suite);
    ]
