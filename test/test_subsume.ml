(* Predicate subsumption (paper footnote 4: x > 10 subsumes x > 20). *)

module S = Astmatch.Subsume
module E = Qgm.Expr
module V = Data.Value

let x = E.Col "x"
let c n = E.Const (V.Int n)
let gt e k = E.Binop (">", e, c k)
let ge e k = E.Binop (">=", e, c k)
let lt e k = E.Binop ("<", e, c k)
let le e k = E.Binop ("<=", e, c k)

let check msg expected weak strong =
  Alcotest.(check bool) msg expected (S.subsumes ~ty:S.no_ty ~weak ~strong)

(* the oracle an integer-typed (or date-typed) column provides *)
let int_ty _ = Some V.Tint
let date_ty _ = Some V.Tdate

let check_ty ty msg expected weak strong =
  Alcotest.(check bool) msg expected (S.subsumes ~ty ~weak ~strong)

let test_equal () =
  check "identical" true (gt x 10) (gt x 10);
  check "normalized equal" true (gt x 10) (E.Binop ("<", c 10, x))

let test_lower_bounds () =
  check "x>10 subsumes x>20" true (gt x 10) (gt x 20);
  check "x>20 does not subsume x>10" false (gt x 20) (gt x 10);
  check "x>=10 subsumes x>10" true (ge x 10) (gt x 10);
  check "x>10 does not subsume x>=10" false (gt x 10) (ge x 10);
  check "x>=10 subsumes x>=11" true (ge x 10) (ge x 11)

let test_upper_bounds () =
  check "x<20 subsumes x<10" true (lt x 20) (lt x 10);
  check "x<10 does not subsume x<20" false (lt x 10) (lt x 20);
  check "x<=10 subsumes x<10" true (le x 10) (lt x 10);
  check "x<10 does not subsume x<=10" false (lt x 10) (le x 10)

let test_different_exprs () =
  check "different column" false (gt x 10) (gt (E.Col "y") 20);
  check "mixed direction" false (gt x 10) (lt x 20);
  check "unrelated shapes" false (E.Is_null (x, true)) (gt x 10)

let test_float_bounds () =
  check "float relax" true
    (E.Binop (">", x, E.Const (V.Float 0.05)))
    (E.Binop (">", x, E.Const (V.Float 0.1)))

let test_complex_lhs () =
  let e = E.Binop ("*", E.Col "a", E.Col "b") in
  check "expression bound" true (gt e 1) (gt e 5);
  check "commuted expression" true (gt (E.Binop ("*", E.Col "b", E.Col "a")) 1) (gt e 5)

(* On an integer-typed column, strict and non-strict bounds on adjacent
   points denote the same set: x > 9 is x >= 10. Untyped or float-typed
   columns must NOT be related this way (there are reals in (9, 10)). *)
let test_integer_bounds () =
  check_ty int_ty "x>9 subsumes x>=10 (int)" true (gt x 9) (ge x 10);
  check_ty int_ty "x>=10 subsumes x>9 (int)" true (ge x 10) (gt x 9);
  check_ty int_ty "x<10 subsumes x<=9 (int)" true (lt x 10) (le x 9);
  check_ty int_ty "x<=9 subsumes x<10 (int)" true (le x 9) (lt x 10);
  check_ty int_ty "x>9 subsumes x>=11" true (gt x 9) (ge x 11);
  check_ty int_ty "x>=11 does not subsume x>9" false (ge x 11) (gt x 9);
  (* x>9 subsumes x>=10 for ANY type (9 < 10); only the converse needs
     discreteness — untyped or dense, it must not be assumed *)
  check "x>9 subsumes x>=10 untyped" true (gt x 9) (ge x 10);
  check "x>=10 does not subsume x>9 untyped" false (ge x 10) (gt x 9);
  check_ty (fun _ -> Some V.Tfloat) "x>=10 does not subsume x>9 (float)"
    false (ge x 10) (gt x 9);
  (* int-typed column with a FLOAT literal bound: the discrete successor
     is undefined for a non-Int constant, so normalization must not fire *)
  check_ty int_ty "float literal on int column stays strict" false
    (E.Binop (">=", x, E.Const (V.Int 10)))
    (E.Binop (">", x, E.Const (V.Float 9.0)))

let test_date_bounds () =
  let d y m dd = E.Const (V.Date (((y * 100) + m) * 100 + dd)) in
  let gtd e c = E.Binop (">", e, c) and ged e c = E.Binop (">=", e, c) in
  check_ty date_ty "d>1999-12-31 subsumes d>=2000-01-01 (rollover)" true
    (gtd x (d 1999 12 31))
    (ged x (d 2000 01 01));
  check_ty date_ty "d>=2000-01-01 subsumes d>1999-12-31 (rollover)" true
    (ged x (d 2000 01 01))
    (gtd x (d 1999 12 31));
  check_ty date_ty "mid-month adjacency" true
    (gtd x (d 2020 06 14))
    (ged x (d 2020 06 15));
  check_ty date_ty "non-adjacent dates unrelated" false
    (ged x (d 2020 06 16))
    (gtd x (d 2020 06 14))

let suite =
  [
    Alcotest.test_case "equal predicates" `Quick test_equal;
    Alcotest.test_case "lower bounds" `Quick test_lower_bounds;
    Alcotest.test_case "upper bounds" `Quick test_upper_bounds;
    Alcotest.test_case "different expressions" `Quick test_different_exprs;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "complex expressions" `Quick test_complex_lhs;
    Alcotest.test_case "integer bound adjacency" `Quick test_integer_bounds;
    Alcotest.test_case "date bound adjacency" `Quick test_date_bounds;
  ]
