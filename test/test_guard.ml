(* The fault-isolation subsystem: deterministic fault injection at every
   pipeline stage must degrade to the base plan (result-identical to a
   rewrite-off session, zero uncaught exceptions), failing candidates are
   quarantined per (query-fingerprint x summary-table x definition-version)
   and expire exactly when the table's definition version moves (REFRESH,
   DROP + re-CREATE) — never on unrelated DML — runtime verification
   catches an injected result corruption and serves the correct answer, and
   a seeded randomized workload under injection stays bag-equal to a plain
   session. *)

module Sess = Mvstore.Session
module Store = Mvstore.Store
module R = Data.Relation
module P = Plancache
module F = Guard.Fault
module GE = Guard.Error
module Q = Guard.Quarantine

let script sn sql = ignore (Sess.exec_sql sn sql)
let parse = Sqlsyn.Parser.parse_query
let run sn sql = Sess.run_query sn (parse sql)

(* every test starts and ends with no armed faults *)
let with_clean_faults f =
  F.disarm_all ();
  Fun.protect ~finally:F.disarm_all f

let default_summary =
  "CREATE SUMMARY TABLE m AS SELECT g, SUM(v) AS s, COUNT(*) AS c FROM t \
   GROUP BY g;"

let grouped_pair ?verify ?(summary = default_summary) () =
  let sn = Sess.create ?verify () in
  let plain = Sess.create ~rewrite:false () in
  let both sql =
    script sn sql;
    script plain sql
  in
  both
    "CREATE TABLE t (g INT NOT NULL, v INT NOT NULL); \
     INSERT INTO t VALUES (1, 10), (1, 20), (2, 5), (3, 8);";
  both summary;
  (sn, plain, both)

let check_equal what sn plain q =
  let via, _ = run sn q in
  let direct, _ = run plain q in
  Alcotest.(check bool)
    (Printf.sprintf "%s: equals rewrite-off" what)
    true
    (R.bag_equal_approx via direct)

(* ---------------- fault unit tests ---------------- *)

let test_fault_countdown () =
  with_clean_faults @@ fun () ->
  Alcotest.(check bool) "initially disarmed" false (F.armed F.Match);
  Alcotest.(check bool) "disarmed fire is false" false (F.fire F.Match);
  F.arm F.Match ~after:3;
  Alcotest.(check bool) "hit 1" false (F.fire F.Match);
  Alcotest.(check bool) "hit 2" false (F.fire F.Match);
  Alcotest.(check bool) "hit 3 fires" true (F.fire F.Match);
  Alcotest.(check bool) "one-shot: disarmed after firing" false
    (F.armed F.Match);
  Alcotest.(check bool) "hit 4 is a no-op" false (F.fire F.Match);
  Alcotest.check_raises "arm 0 rejected"
    (Invalid_argument "Fault.arm: after must be positive") (fun () ->
      F.arm F.Match ~after:0)

let test_fault_hit_raises () =
  with_clean_faults @@ fun () ->
  F.arm F.Compensate ~after:1;
  Alcotest.check_raises "hit raises Injected" (F.Injected F.Compensate)
    (fun () -> F.hit F.Compensate)

let test_arm_spec () =
  with_clean_faults @@ fun () ->
  (match F.arm_spec "match:2, corrupt" with
  | Ok () -> ()
  | Error m -> Alcotest.failf "spec rejected: %s" m);
  Alcotest.(check bool) "match armed" true (F.armed F.Match);
  Alcotest.(check bool) "corrupt armed" true (F.armed F.Corrupt);
  Alcotest.(check bool) "navigate untouched" false (F.armed F.Navigate);
  Alcotest.(check bool) "match fires on 2nd hit" false (F.fire F.Match);
  Alcotest.(check bool) "match fires on 2nd hit (2)" true (F.fire F.Match);
  Alcotest.(check bool) "unknown point rejected" true
    (Result.is_error (F.arm_spec "frobnicate"));
  Alcotest.(check bool) "bad count rejected" true
    (Result.is_error (F.arm_spec "match:0"));
  Alcotest.(check bool) "empty spec is a no-op" true (F.arm_spec "" = Ok ())

let test_corrupt_value () =
  let module V = Data.Value in
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Format.asprintf "corruption changes %a" V.pp v)
        false
        (V.equal v (F.corrupt_value v)))
    [ V.Int 7; V.Float 1.5; V.Str "x"; V.Bool true; V.Null; V.date 1995 6 1 ]

(* ---------------- sandbox classification ---------------- *)

let test_sandbox_classify () =
  with_clean_faults @@ fun () ->
  let classify exn =
    match
      Guard.Sandbox.protect ~stage:GE.Match ~mv:"m" (fun () -> raise exn)
    with
    | Ok _ -> Alcotest.fail "exception not contained"
    | Error e -> e
  in
  Alcotest.(check bool) "ok passes through" true
    (Guard.Sandbox.protect ~stage:GE.Match (fun () -> 41 + 1) = Ok 42);
  let e = classify (Failure "boom") in
  Alcotest.(check bool) "Failure classified" true
    (e.GE.err_kind = GE.Failed "boom" && e.GE.err_mv = Some "m");
  Alcotest.(check bool) "Invalid_argument classified" true
    ((classify (Invalid_argument "x")).GE.err_kind = GE.Invalid "x");
  Alcotest.(check bool) "Division_by_zero classified" true
    ((classify Division_by_zero).GE.err_kind = GE.Div_zero);
  Alcotest.(check bool) "assert classified" true
    ((classify (Assert_failure ("f", 1, 2))).GE.err_kind = GE.Assertion);
  (* the injection point knows better than the catch site where it struck *)
  let e = classify (F.Injected F.Translate) in
  Alcotest.(check bool) "injected fault overrides stage" true
    (e.GE.err_kind = GE.Injected && e.GE.err_stage = GE.Translate);
  Alcotest.(check bool) "to_string mentions the stage" true
    (String.length (GE.to_string e) > 0)

(* ---------------- quarantine unit tests ---------------- *)

let test_quarantine_unit () =
  let q = Q.create ~capacity:2 () in
  let versions = [ ("m1", 1); ("m2", 1) ] in
  Alcotest.(check bool) "fresh add" true (Q.add q ~version:1 ~fp:"a" ~mv:"m1");
  Alcotest.(check bool) "duplicate not re-added" false
    (Q.add q ~version:1 ~fp:"a" ~mv:"m1");
  Alcotest.(check bool) "second mv same fp" true
    (Q.add q ~version:1 ~fp:"a" ~mv:"m2");
  Alcotest.(check (list string)) "blocked lists both" [ "m1"; "m2" ]
    (List.sort compare (Q.blocked q ~versions ~fp:"a"));
  Alcotest.(check bool) "is_blocked" true
    (Q.is_blocked q ~versions ~fp:"a" ~mv:"m2");
  Alcotest.(check int) "pairs held" 2 (Q.entries q);
  (* unrelated DML bumps the global epoch, not the definition version:
     the observation must stand *)
  Alcotest.(check (list string)) "unchanged version stays blocked"
    [ "m1"; "m2" ]
    (List.sort compare (Q.blocked q ~versions ~fp:"a"));
  (* refresh / re-create moves the version: expired on lookup *)
  Alcotest.(check (list string)) "version move expires" []
    (Q.blocked q ~versions:[ ("m1", 2); ("m2", 2) ] ~fp:"a");
  Alcotest.(check int) "expired entry dropped" 0 (Q.length q);
  (* a table absent from the lookup (stale or dropped right now) is
     retained but not reported; its re-created incarnation carries a new
     version and must not inherit the old observation *)
  ignore (Q.add q ~version:3 ~fp:"b" ~mv:"mm");
  Alcotest.(check (list string)) "absent table not reported" []
    (Q.blocked q ~versions:[] ~fp:"b");
  Alcotest.(check int) "absent pair retained" 1 (Q.entries q);
  Alcotest.(check bool) "same incarnation still blocked" true
    (Q.is_blocked q ~versions:[ ("mm", 3) ] ~fp:"b" ~mv:"mm");
  Alcotest.(check bool) "re-created incarnation not blocked" false
    (Q.is_blocked q ~versions:[ ("mm", 9) ] ~fp:"b" ~mv:"mm");
  (* a newer failure supersedes the same table's older pair *)
  Q.clear q;
  ignore (Q.add q ~version:1 ~fp:"c" ~mv:"k");
  Alcotest.(check bool) "newer version supersedes" true
    (Q.add q ~version:2 ~fp:"c" ~mv:"k");
  Alcotest.(check int) "superseded, not accumulated" 1 (Q.entries q);
  Alcotest.(check bool) "blocked at the new version" true
    (Q.is_blocked q ~versions:[ ("k", 2) ] ~fp:"c" ~mv:"k");
  (* LRU bound on fingerprints *)
  Q.clear q;
  let vm = [ ("m", 5) ] in
  ignore (Q.add q ~version:5 ~fp:"x" ~mv:"m");
  ignore (Q.add q ~version:5 ~fp:"y" ~mv:"m");
  ignore (Q.blocked q ~versions:vm ~fp:"x");
  ignore (Q.add q ~version:5 ~fp:"z" ~mv:"m");
  Alcotest.(check int) "capacity bound" 2 (Q.length q);
  Alcotest.(check bool) "LRU victim evicted" false
    (Q.is_blocked q ~versions:vm ~fp:"y" ~mv:"m");
  Alcotest.(check bool) "recently used survives" true
    (Q.is_blocked q ~versions:vm ~fp:"x" ~mv:"m");
  Q.clear q;
  Alcotest.(check int) "clear" 0 (Q.entries q)

(* ---------------- injection matrix: fallback at every stage ------------- *)

(* Arm each pipeline point in turn; the query must answer identically to a
   rewrite-off session with zero uncaught exceptions. When the fault
   actually fired (the point reports disarmed afterwards) the plan must
   have fallen back and the error must be counted. *)
let test_injection_matrix () =
  with_clean_faults @@ fun () ->
  List.iter
    (fun (point, summary, mv, q) ->
      let name = F.point_name point in
      let sn, plain, both = grouped_pair ~summary () in
      (* sanity: the query rewrites when healthy *)
      let _, steps = run sn q in
      Alcotest.(check bool) (name ^ ": rewrites when healthy") true
        (steps <> []);
      (* new epoch so the cached healthy plan cannot be served *)
      both "INSERT INTO t VALUES (4, 2);";
      let st0 = Sess.stats sn in
      F.arm point ~after:1;
      let via, steps = run sn q in
      let fired = not (F.armed point) in
      Alcotest.(check bool) (name ^ ": fault consumed") true fired;
      Alcotest.(check bool) (name ^ ": fallback to base plan") true
        (steps = []);
      let direct, _ = run plain q in
      Alcotest.(check bool) (name ^ ": result equals rewrite-off") true
        (R.bag_equal_approx via direct);
      let st1 = Sess.stats sn in
      Alcotest.(check bool) (name ^ ": error counted") true
        (st1.P.Stats.rw_errors > st0.P.Stats.rw_errors);
      Alcotest.(check bool) (name ^ ": fallback counted") true
        (st1.P.Stats.fallbacks > st0.P.Stats.fallbacks);
      Alcotest.(check bool) (name ^ ": candidate quarantined") true
        (st1.P.Stats.quarantined > st0.P.Stats.quarantined);
      (* repeat query: no fault armed any more, still served correctly *)
      check_equal (name ^ ": repeat query") sn plain q;
      (* unrelated DML bumps the epoch but not the table's definition
         version: the quarantine observation must stand *)
      both "INSERT INTO t VALUES (5, 1);";
      let _, steps = run sn q in
      Alcotest.(check bool) (name ^ ": quarantine survives unrelated DML")
        true (steps = []);
      check_equal (name ^ ": under quarantine") sn plain q;
      (* REFRESH moves the definition version: the observation is void and
         rewriting comes back *)
      both (Printf.sprintf "REFRESH SUMMARY TABLE %s;" mv);
      let _, steps = run sn q in
      Alcotest.(check bool) (name ^ ": rewrite restored after REFRESH")
        true (steps <> []);
      check_equal (name ^ ": after restore") sn plain q)
    [
      ( F.Navigate,
        default_summary,
        "m",
        "SELECT g, SUM(v) AS s FROM t GROUP BY g" );
      (F.Match, default_summary, "m", "SELECT g, SUM(v) AS s FROM t GROUP BY g");
      ( F.Compensate,
        default_summary,
        "m",
        "SELECT g, COUNT(*) AS c FROM t GROUP BY g" );
      (* expression translation runs when a select-level predicate is
         compensated through a finer summary and the query regroups it;
         duplicate (g, v) rows so the summary is genuinely smaller and the
         rewrite estimated cheaper *)
      ( F.Translate,
        Printf.sprintf
          "INSERT INTO t VALUES %s; \
           CREATE SUMMARY TABLE mf AS SELECT g, v, SUM(v) AS s, COUNT(*) AS \
           c FROM t GROUP BY g, v;"
          (String.concat ", "
             (List.concat
                (List.init 10 (fun _ ->
                     [ "(1, 10)"; "(1, 20)"; "(2, 5)"; "(3, 8)" ])))),
        "mf",
        "SELECT g, SUM(v) AS s FROM t WHERE v > 6 GROUP BY g" );
    ]

(* the quarantine is keyed to the table's definition version: DROP +
   re-CREATE of the same name is a new incarnation and must not inherit
   (resurrect) the observation recorded against the old one *)
let test_quarantine_not_resurrected_by_recreate () =
  with_clean_faults @@ fun () ->
  (* pin validation off: this test is about the *runtime* verify oracle
     catching the corruption; at ASTQL_VALIDATE=2 the Corrupt fault would
     strike at plan time and be caught statically instead (covered by
     test_lint.ml) *)
  Lint.Level.with_level Lint.Level.Off @@ fun () ->
  let sn, plain, both = grouped_pair ~verify:Sess.Always () in
  let q = "SELECT g, SUM(v) AS s FROM t GROUP BY g" in
  F.arm F.Corrupt ~after:1;
  ignore (run sn q);
  Alcotest.(check bool) "corruption fired" false (F.armed F.Corrupt);
  let _, steps = run sn q in
  Alcotest.(check bool) "quarantined after mismatch" true (steps = []);
  (* unrelated DML: the epoch moves, the definition version does not *)
  both "INSERT INTO t VALUES (7, 3);";
  let _, steps = run sn q in
  Alcotest.(check bool) "quarantine survives unrelated DML" true (steps = []);
  check_equal "under quarantine" sn plain q;
  (* the re-created table carries a new definition version: it rewrites,
     and verification (still Always) confirms the result *)
  both ("DROP SUMMARY TABLE m; " ^ default_summary);
  let _, steps = run sn q in
  Alcotest.(check bool) "re-created table rewrites" true (steps <> []);
  check_equal "after re-create" sn plain q;
  Alcotest.(check int) "no further mismatch" 1
    (Sess.stats sn).P.Stats.verify_mismatches

(* a failure in one candidate must not take down the others *)
let test_other_ast_still_tried () =
  with_clean_faults @@ fun () ->
  let sn = Sess.create () in
  let plain = Sess.create ~rewrite:false () in
  let both sql =
    script sn sql;
    script plain sql
  in
  both
    "CREATE TABLE t (g INT NOT NULL, v INT NOT NULL); \
     INSERT INTO t VALUES (1, 10), (1, 20), (2, 5); \
     CREATE SUMMARY TABLE m1 AS SELECT g, SUM(v) AS s, COUNT(*) AS c FROM t \
     GROUP BY g; \
     CREATE SUMMARY TABLE m2 AS SELECT g, SUM(v) AS s, COUNT(*) AS c FROM t \
     GROUP BY g;";
  let q = "SELECT g, SUM(v) AS s FROM t GROUP BY g" in
  (* the first match-function call (candidate m1) dies; m2 must serve *)
  F.arm F.Match ~after:1;
  let via, steps = run sn q in
  Alcotest.(check bool) "fault fired" false (F.armed F.Match);
  Alcotest.(check bool) "still rewritten via the surviving AST" true
    (steps <> []);
  List.iter
    (fun (s : Astmatch.Rewrite.step) ->
      Alcotest.(check string) "routed around the failed candidate" "m2"
        s.used_mv)
    steps;
  let direct, _ = run plain q in
  Alcotest.(check bool) "result correct" true (R.bag_equal_approx via direct);
  let st = Sess.stats sn in
  Alcotest.(check bool) "error contained and counted" true
    (st.P.Stats.rw_errors >= 1);
  Alcotest.(check int) "not a fallback: another AST answered" 0
    st.P.Stats.fallbacks

(* ---------------- runtime verification ---------------- *)

let test_verify_catches_corruption () =
  with_clean_faults @@ fun () ->
  (* runtime-oracle path: see test_quarantine_not_resurrected_by_recreate *)
  Lint.Level.with_level Lint.Level.Off @@ fun () ->
  let sn, plain, both = grouped_pair ~verify:Sess.Always () in
  let q = "SELECT g, SUM(v) AS s FROM t GROUP BY g" in
  F.arm F.Corrupt ~after:1;
  let via, steps = run sn q in
  Alcotest.(check bool) "corruption fired" false (F.armed F.Corrupt);
  Alcotest.(check bool) "corrupted rewrite not served" true (steps = []);
  let direct, _ = run plain q in
  Alcotest.(check bool) "served result is correct" true
    (R.bag_equal_approx via direct);
  let st = Sess.stats sn in
  Alcotest.(check int) "mismatch recorded" 1 st.P.Stats.verify_mismatches;
  Alcotest.(check bool) "summary table quarantined" true
    (st.P.Stats.quarantined >= 1);
  (* repeat at the same epoch: the discredited candidate is skipped *)
  let via, steps = run sn q in
  Alcotest.(check bool) "repeat skips the quarantined candidate" true
    (steps = []);
  Alcotest.(check bool) "repeat result correct" true
    (R.bag_equal_approx via direct);
  let st = Sess.stats sn in
  Alcotest.(check bool) "quarantine skip counted" true
    (st.P.Stats.quarantine_skips >= 1);
  Alcotest.(check int) "no further mismatch" 1 st.P.Stats.verify_mismatches;
  (* REFRESH moves the epoch: quarantine expires, rewriting comes back and
     now verifies cleanly *)
  both "REFRESH SUMMARY TABLE m;";
  let via, steps = run sn q in
  Alcotest.(check bool) "rewrite restored after REFRESH" true (steps <> []);
  Alcotest.(check bool) "restored result verified correct" true
    (R.bag_equal_approx via direct);
  let st = Sess.stats sn in
  Alcotest.(check int) "still exactly one mismatch ever" 1
    st.P.Stats.verify_mismatches

let test_verify_sampling_deterministic () =
  with_clean_faults @@ fun () ->
  let sn, _, _ = grouped_pair ~verify:(Sess.Sampled 0.25) () in
  let q = "SELECT g, SUM(v) AS s FROM t GROUP BY g" in
  for _ = 1 to 8 do
    ignore (run sn q)
  done;
  Alcotest.(check int) "exactly every 4th rewritten query verified" 2
    (Sess.stats sn).P.Stats.verify_runs;
  Alcotest.(check int) "no mismatches" 0
    (Sess.stats sn).P.Stats.verify_mismatches

let test_verify_oracle () =
  with_clean_faults @@ fun () ->
  let sn = Sess.create ~verify:Sess.Always ~verify_oracle:true () in
  script sn
    "CREATE TABLE t (g INT NOT NULL, v INT NOT NULL); \
     INSERT INTO t VALUES (1, 10), (1, 20), (2, 5); \
     CREATE SUMMARY TABLE m AS SELECT g, SUM(v) AS s, COUNT(*) AS c FROM t \
     GROUP BY g;";
  let _, steps = run sn "SELECT g, COUNT(*) AS c FROM t GROUP BY g" in
  Alcotest.(check bool) "rewritten" true (steps <> []);
  let st = Sess.stats sn in
  Alcotest.(check int) "verified against the reference evaluator" 1
    st.P.Stats.verify_runs;
  Alcotest.(check int) "rewrite agrees with the oracle" 0
    st.P.Stats.verify_mismatches

(* ---------------- planner never raises ---------------- *)

let test_planner_sandbox () =
  with_clean_faults @@ fun () ->
  (* a fault in the planning path outside any candidate must also degrade:
     plan on a planner whose candidate list raises via the navigator even
     with no fingerprint cached *)
  let sn, plain, _ = grouped_pair () in
  let q = "SELECT g, SUM(v) AS s FROM t GROUP BY g" in
  (* all points armed at once — full fault injection; still no escape *)
  F.arm F.Navigate ~after:1;
  F.arm F.Match ~after:1;
  F.arm F.Compensate ~after:1;
  F.arm F.Translate ~after:1;
  check_equal "full injection" sn plain q;
  F.disarm_all ();
  check_equal "after disarm" sn plain q

(* ---------------- randomized workload under injection ---------------- *)

let test_randomized_workload () =
  with_clean_faults @@ fun () ->
  let seed = Option.value (F.seed_of_env ()) ~default:20260806 in
  let rng = Random.State.make [| seed |] in
  (* verify:Always so that every randomly injected result corruption is
     caught in the act — under sampling a corruption may (by design) be
     served unverified, which is the cost/coverage trade-off, not a bug *)
  let sn = Sess.create ~verify:Sess.Always () in
  let plain = Sess.create ~rewrite:false () in
  let both sql =
    script sn sql;
    script plain sql
  in
  both
    "CREATE TABLE t (g INT NOT NULL, v INT NOT NULL); \
     INSERT INTO t VALUES (1, 10), (1, 20), (2, 5), (3, 8); \
     CREATE SUMMARY TABLE m1 AS SELECT g, SUM(v) AS s, COUNT(*) AS c FROM t \
     GROUP BY g; \
     CREATE SUMMARY TABLE m2 AS SELECT g, SUM(v) AS s FROM t GROUP BY g \
     HAVING SUM(v) > 10;";
  let queries =
    [|
      "SELECT g, SUM(v) AS s FROM t GROUP BY g";
      "SELECT g, COUNT(*) AS c FROM t GROUP BY g";
      "SELECT g, SUM(v) AS s FROM t GROUP BY g HAVING SUM(v) > 10";
      "SELECT DISTINCT g FROM t";
      "SELECT g, v FROM t";
    |]
  in
  let points = [| F.Navigate; F.Match; F.Compensate; F.Translate; F.Corrupt |] in
  for step = 1 to 120 do
    (match Random.State.int rng 10 with
    | 0 ->
        both
          (Printf.sprintf "INSERT INTO t VALUES (%d, %d);"
             (1 + Random.State.int rng 5)
             (Random.State.int rng 50))
    | 1 ->
        (* arm a random point a few hits out; whether and where it fires
           depends on the query mix — the invariant must hold regardless *)
        F.arm
          points.(Random.State.int rng (Array.length points))
          ~after:(1 + Random.State.int rng 3)
    | _ -> ());
    let q = queries.(Random.State.int rng (Array.length queries)) in
    let via, _ = run sn q in
    let direct, _ = run plain q in
    Alcotest.(check bool)
      (Printf.sprintf "step %d (%s)" step q)
      true
      (R.bag_equal_approx via direct)
  done;
  (* every verification mismatch (injected corruption caught in the act)
     must have quarantined the candidate that produced it *)
  let st = Sess.stats sn in
  Alcotest.(check bool) "mismatches all quarantined" true
    (st.P.Stats.verify_mismatches <= st.P.Stats.quarantined)

(* ---------------- error-surface satellites ---------------- *)

let test_division_by_zero_session_error () =
  with_clean_faults @@ fun () ->
  let sn = Sess.create () in
  script sn
    "CREATE TABLE t (g INT NOT NULL, v INT NOT NULL); \
     INSERT INTO t VALUES (1, 10);";
  Alcotest.check_raises "SELECT 1/0"
    (Sess.Session_error "division by zero in SELECT") (fun () ->
      ignore (run sn "SELECT v / 0 AS bad FROM t"));
  Alcotest.check_raises "modulo zero"
    (Sess.Session_error "division by zero in SELECT") (fun () ->
      ignore (run sn "SELECT v % 0 AS bad FROM t"));
  Alcotest.check_raises "INSERT 1/0"
    (Sess.Session_error "division by zero in INSERT") (fun () ->
      ignore (Sess.exec_sql sn "INSERT INTO t VALUES (2, 1 / 0);"));
  (* the session survives: the table is intact and still queryable *)
  let rel, _ = run sn "SELECT g, v FROM t" in
  Alcotest.(check int) "failed INSERT left no row" 1 (R.cardinality rel)

let test_reference_errors_are_classified () =
  let db = Helpers.tiny_db () in
  let g =
    Helpers.build (Engine.Db.catalog db)
      "SELECT label, (SELECT v FROM fact) AS sv FROM dims"
  in
  (match Engine.Reference.run db g with
  | _ -> Alcotest.fail "expected Reference_error"
  | exception Engine.Reference.Reference_error m ->
      Alcotest.(check bool) "names the cardinality" true
        (String.length m > 0
        && String.starts_with ~prefix:"scalar subquery" m)
  | exception Failure _ -> Alcotest.fail "bare Failure escaped the oracle")

(* ---------------- health report ---------------- *)

let test_health_report () =
  with_clean_faults @@ fun () ->
  let sn, _, _ = grouped_pair ~verify:Sess.Always () in
  F.arm F.Corrupt ~after:1;
  ignore (run sn "SELECT g, SUM(v) AS s FROM t GROUP BY g");
  let h = Sess.health sn in
  let contains needle =
    let nh = String.length h and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub h i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "health mentions %S" needle)
        true (contains needle))
    [ "fallbacks"; "quarantined"; "verification" ]

let suite =
  [
    Alcotest.test_case "fault countdown" `Quick test_fault_countdown;
    Alcotest.test_case "fault hit raises" `Quick test_fault_hit_raises;
    Alcotest.test_case "arm_spec parsing" `Quick test_arm_spec;
    Alcotest.test_case "corrupt_value" `Quick test_corrupt_value;
    Alcotest.test_case "sandbox classification" `Quick test_sandbox_classify;
    Alcotest.test_case "quarantine unit" `Quick test_quarantine_unit;
    Alcotest.test_case "injection matrix" `Quick test_injection_matrix;
    Alcotest.test_case "quarantine not resurrected by re-create" `Quick
      test_quarantine_not_resurrected_by_recreate;
    Alcotest.test_case "other AST still tried" `Quick
      test_other_ast_still_tried;
    Alcotest.test_case "verify catches corruption" `Quick
      test_verify_catches_corruption;
    Alcotest.test_case "verify sampling deterministic" `Quick
      test_verify_sampling_deterministic;
    Alcotest.test_case "verify against oracle" `Quick test_verify_oracle;
    Alcotest.test_case "full injection never escapes" `Quick
      test_planner_sandbox;
    Alcotest.test_case "randomized workload under injection" `Quick
      test_randomized_workload;
    Alcotest.test_case "division by zero surfaced" `Quick
      test_division_by_zero_session_error;
    Alcotest.test_case "reference errors classified" `Quick
      test_reference_errors_are_classified;
    Alcotest.test_case "health report" `Quick test_health_report;
  ]
