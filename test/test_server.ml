(* The serving stack end to end: JSON parsing, wire round-trips, typed
   errors, backpressure, and fault containment — real sockets, real
   domains. *)

module J = Obs.Json
module Sess = Mvstore.Session
module V = Data.Value

(* --- JSON parser -------------------------------------------------------- *)

let test_json_parse () =
  let ok s = match J.of_string s with Ok v -> v | Error e -> Alcotest.fail e in
  let err s =
    match J.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("should not parse: " ^ s)
  in
  (match ok {| {"a": [1, -2.5, true, null, "x\ny"], "b": {}} |} with
  | J.Obj [ ("a", J.List [ J.Int 1; J.Float f; J.Bool true; J.Null; J.Str s ]);
            ("b", J.Obj []) ] ->
      Alcotest.(check (float 0.)) "float" (-2.5) f;
      Alcotest.(check string) "escape" "x\ny" s
  | other -> Alcotest.fail ("unexpected shape: " ^ J.to_string other));
  (match ok {|"é😀"|} with
  | J.Str s -> Alcotest.(check string) "utf8" "\xc3\xa9\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "expected string");
  (match ok "1e3" with
  | J.Float f -> Alcotest.(check (float 0.)) "exp" 1000. f
  | _ -> Alcotest.fail "1e3 should be a float");
  (match ok "42" with
  | J.Int 42 -> ()
  | _ -> Alcotest.fail "42 should be an int");
  err "{";
  err "[1,]";
  err "nulll";
  err "1 2";
  err {|{"a" 1}|};
  err {|"\ud800"|}

let test_json_roundtrip () =
  let v =
    J.Obj
      [
        ("id", J.Int 7);
        ("x", J.Float 0.1);
        ("s", J.Str "a\"b\\c\n\t");
        ("l", J.List [ J.Null; J.Bool false ]);
      ]
  in
  match J.of_string (J.to_string v) with
  | Ok v' -> Alcotest.(check string) "round trip" (J.to_string v) (J.to_string v')
  | Error e -> Alcotest.fail e

let test_value_roundtrip () =
  let vals =
    [
      V.Null; V.Int (-3); V.Float 1.5; V.Float Float.nan;
      V.Float Float.infinity; V.Str "héllo"; V.Bool true; V.date 2024 2 29;
    ]
  in
  List.iter
    (fun v ->
      match Server.Wire.value_of_json (Server.Wire.value_to_json v) with
      | Ok v' ->
          if not (V.is_null v) || not (V.is_null v') then
            Alcotest.(check bool)
              ("round trip " ^ V.to_string v)
              true
              (V.compare v v' = 0 || (v <> v && v' <> v'))
      | Error e -> Alcotest.fail e)
    vals

(* --- a live server ------------------------------------------------------ *)

let seed_shared () =
  let sn = Sess.create () in
  ignore
    (Sess.exec_sql sn
       "CREATE TABLE sales (region VARCHAR NOT NULL, amount INT NOT NULL); \
        INSERT INTO sales VALUES ('east', 10), ('east', 20), ('west', 5); \
        CREATE SUMMARY TABLE sales_by_region AS SELECT region, SUM(amount) \
        AS total, COUNT(*) AS n FROM sales GROUP BY region;");
  Sess.share sn

let with_server ?(domains = 2) ?(queue_depth = 4) ?degrade_watermark
    ?retry_after_ms ?idle_timeout_ms ?io_timeout_ms ?request_deadline_ms
    ?shared f =
  let shared = match shared with Some s -> s | None -> seed_shared () in
  let srv =
    Server.Listener.start
      (Server.Listener.config
         ~addr:(Server.Listener.Tcp ("127.0.0.1", 0))
         ~domains ~queue_depth ~backlog:16 ?degrade_watermark ?retry_after_ms
         ?idle_timeout_ms ?io_timeout_ms ?request_deadline_ms ())
      ~mk_session:(fun () -> Sess.attach shared)
  in
  let addr =
    Server.Listener.Tcp
      ("127.0.0.1", Option.get (Server.Listener.port srv))
  in
  Fun.protect ~finally:(fun () -> Server.Listener.stop srv) (fun () -> f addr)

let expect_table = function
  | Server.Wire.Table (cols, rows) -> (cols, rows)
  | _ -> Alcotest.fail "expected a table outcome"

let test_round_trip () =
  with_server (fun addr ->
      let c = Server.Client.connect_addr addr in
      Fun.protect ~finally:(fun () -> Server.Client.close c) (fun () ->
          (match Server.Client.request c "SELECT region, SUM(amount) AS total \
                                          FROM sales GROUP BY region ORDER BY \
                                          region;" with
          | Ok r -> (
              Alcotest.(check bool) "has latency" true (r.Server.Wire.rp_ms >= 0.);
              match r.Server.Wire.rp_results with
              | [ t ] ->
                  let cols, rows = expect_table t in
                  Alcotest.(check (list string)) "columns"
                    [ "region"; "total" ] cols;
                  Alcotest.(check int) "rows" 2 (List.length rows);
                  (match rows with
                  | [ [| V.Str "east"; V.Int 30 |]; [| V.Str "west"; V.Int 5 |] ]
                    -> ()
                  | _ -> Alcotest.fail "wrong rows")
              | _ -> Alcotest.fail "expected one outcome")
          | Error e -> Alcotest.fail (Server.Wire.error_to_string e));
          (* multi-statement script in one request *)
          match
            Server.Client.request c
              "CREATE TABLE t2 (a INT); INSERT INTO t2 VALUES (1), (2); \
               SELECT COUNT(*) AS n FROM t2;"
          with
          | Ok r -> (
              Alcotest.(check int) "three outcomes" 3
                (List.length r.Server.Wire.rp_results);
              match List.rev r.Server.Wire.rp_results with
              | last :: _ -> (
                  match expect_table last with
                  | _, [ [| V.Int 2 |] ] -> ()
                  | _ -> Alcotest.fail "count wrong")
              | [] -> Alcotest.fail "no outcomes")
          | Error e -> Alcotest.fail (Server.Wire.error_to_string e)))

let test_dml_visible_across_connections () =
  with_server (fun addr ->
      let a = Server.Client.connect_addr addr in
      (match
         Server.Client.request a "INSERT INTO sales VALUES ('north', 7);"
       with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Server.Wire.error_to_string e));
      Server.Client.close a;
      let b = Server.Client.connect_addr addr in
      Fun.protect ~finally:(fun () -> Server.Client.close b) (fun () ->
          match
            Server.Client.request b
              "SELECT COUNT(*) AS n FROM sales WHERE region = 'north';"
          with
          | Ok r -> (
              match r.Server.Wire.rp_results with
              | [ t ] -> (
                  match expect_table t with
                  | _, [ [| V.Int 1 |] ] -> ()
                  | _ -> Alcotest.fail "published write not visible")
              | _ -> Alcotest.fail "expected one outcome")
          | Error e -> Alcotest.fail (Server.Wire.error_to_string e)))

let test_typed_errors () =
  with_server (fun addr ->
      let c = Server.Client.connect_addr addr in
      Fun.protect ~finally:(fun () -> Server.Client.close c) (fun () ->
          (match Server.Client.request c "SELEC oops" with
          | Error e ->
              Alcotest.(check string) "code" "session_error"
                e.Server.Wire.we_code;
              Alcotest.(check (option string)) "statement echoed"
                (Some "SELEC oops") e.Server.Wire.we_statement;
              Alcotest.(check bool) "msg nonempty" true
                (String.length e.Server.Wire.we_msg > 0)
          | Ok _ -> Alcotest.fail "bad SQL must fail");
          (* a failed statement must not poison the connection *)
          (match Server.Client.request c "SELECT COUNT(*) AS n FROM sales;" with
          | Ok _ -> ()
          | Error e -> Alcotest.fail (Server.Wire.error_to_string e));
          (* a failed DML publishes nothing *)
          (match
             Server.Client.request c
               "INSERT INTO sales VALUES ('torn', 1), ('torn', NULL);"
           with
          | Error e ->
              Alcotest.(check string) "code" "session_error"
                e.Server.Wire.we_code
          | Ok _ -> Alcotest.fail "NOT NULL violation must fail");
          match
            Server.Client.request c
              "SELECT region, COUNT(*) AS n FROM sales WHERE region = \
               'torn' GROUP BY region;"
          with
          | Ok r -> (
              match r.Server.Wire.rp_results with
              | [ t ] -> (
                  match expect_table t with
                  | _, [] -> ()
                  | _ -> Alcotest.fail "failed statement leaked rows")
              | _ -> Alcotest.fail "expected one outcome")
          | Error e -> Alcotest.fail (Server.Wire.error_to_string e)))

let test_bad_request_line () =
  with_server (fun addr ->
      (* speak raw protocol: not JSON at all *)
      let fd =
        match addr with
        | Server.Listener.Tcp (h, p) ->
            let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
            Unix.connect s (Unix.ADDR_INET (Unix.inet_addr_of_string h, p));
            s
        | _ -> Alcotest.fail "tcp expected"
      in
      let io = Server.Lineio.make fd in
      Server.Lineio.write_line io "this is not json";
      (match Server.Lineio.read_line io with
      | Some line -> (
          match Server.Wire.response_of_line line with
          | Ok (Server.Wire.Failed (_, e)) ->
              Alcotest.(check string) "code" "bad_request"
                e.Server.Wire.we_code
          | _ -> Alcotest.fail "expected typed bad_request")
      | None -> Alcotest.fail "no response");
      (* missing sql field *)
      Server.Lineio.write_line io {|{"id": 1}|};
      (match Server.Lineio.read_line io with
      | Some line -> (
          match Server.Wire.response_of_line line with
          | Ok (Server.Wire.Failed (_, e)) ->
              Alcotest.(check string) "code" "bad_request"
                e.Server.Wire.we_code
          | _ -> Alcotest.fail "expected typed bad_request")
      | None -> Alcotest.fail "no response");
      Server.Lineio.close io)

let test_overload_typed_rejection () =
  with_server ~domains:1 ~queue_depth:1 (fun addr ->
      let a = Server.Client.connect_addr addr in
      (* completing a request proves the single worker is bound to A *)
      (match Server.Client.request a "SELECT COUNT(*) AS n FROM sales;" with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Server.Wire.error_to_string e));
      let b = Server.Client.connect_addr addr in
      (* B occupies the one queue slot; C must be shed with a typed error *)
      let c = Server.Client.connect_addr addr in
      (match Server.Client.request c "SELECT COUNT(*) AS n FROM sales;" with
      | Error e ->
          Alcotest.(check string) "code" "overloaded" e.Server.Wire.we_code
      | Ok _ -> Alcotest.fail "expected overloaded"
      | exception _ ->
          (* rejection may close before our request line is read *)
          ());
      Server.Client.close c;
      (* free the worker: A hangs up, queued B gets served *)
      Server.Client.close a;
      (match Server.Client.request b "SELECT COUNT(*) AS n FROM sales;" with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Server.Wire.error_to_string e));
      Server.Client.close b)

let test_accept_fault_is_contained () =
  with_server ~domains:1 ~queue_depth:4 (fun addr ->
      Guard.Fault.disarm_all ();
      Guard.Fault.arm Guard.Fault.Accept ~after:2;
      Fun.protect ~finally:Guard.Fault.disarm_all (fun () ->
          let q c =
            Server.Client.request c "SELECT COUNT(*) AS n FROM sales;"
          in
          let c1 = Server.Client.connect_addr addr in
          (match q c1 with
          | Ok _ -> ()
          | Error e -> Alcotest.fail (Server.Wire.error_to_string e));
          Server.Client.close c1;
          (* the second connection's handler is killed by the injected
             fault; the client just sees a hangup *)
          let c2 = Server.Client.connect_addr addr in
          (match q c2 with
          | Ok _ -> Alcotest.fail "faulted connection should not answer"
          | Error _ -> ()
          | exception _ -> ());
          Server.Client.close c2;
          (* and the server is still alive for the next one *)
          let c3 = Server.Client.connect_addr addr in
          (match q c3 with
          | Ok _ -> ()
          | Error e -> Alcotest.fail (Server.Wire.error_to_string e));
          Server.Client.close c3))

let test_unix_socket_and_rewrite_opt () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "astql_test_%d.sock" (Unix.getpid ()))
  in
  let shared = seed_shared () in
  let srv =
    Server.Listener.start
      (Server.Listener.config
         ~addr:(Server.Listener.Unix_path path)
         ~domains:1 ~queue_depth:2 ~backlog:8 ())
      ~mk_session:(fun () -> Sess.attach shared)
  in
  Fun.protect ~finally:(fun () -> Server.Listener.stop srv) (fun () ->
      let c = Server.Client.connect path in
      Fun.protect ~finally:(fun () -> Server.Client.close c) (fun () ->
          let sql =
            "EXPLAIN REWRITE SELECT region, SUM(amount) AS total FROM sales \
             GROUP BY region;"
          in
          let plan_of r =
            match r.Server.Wire.rp_results with
            | [ Server.Wire.Plan p ] -> p
            | _ -> Alcotest.fail "expected a plan outcome"
          in
          let with_rw =
            match Server.Client.request c sql with
            | Ok r -> plan_of r
            | Error e -> Alcotest.fail (Server.Wire.error_to_string e)
          in
          let contains hay needle =
            let nh = String.length hay and nn = String.length needle in
            let rec go i =
              i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool) "rewrites against the summary" true
            (contains with_rw "sales_by_region");
          match Server.Client.request c ~rewrite:false sql with
          | Ok r ->
              let without = plan_of r in
              Alcotest.(check bool) "opts.rewrite=false suppresses routing"
                true (without <> with_rw)
          | Error e -> Alcotest.fail (Server.Wire.error_to_string e)));
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists path)

(* --- adversarial request decoding --------------------------------------- *)

(* Whatever bytes arrive, request decoding must produce a request or a
   typed bad_request — never an escaped exception. *)
let test_adversarial_request_decode () =
  let decode line =
    match Server.Wire.request_of_line line with
    | Ok _ -> `Ok
    | Error e ->
        Alcotest.(check string)
          ("bad_request for " ^ String.escaped line)
          "bad_request" e.Server.Wire.we_code;
        `Bad
    | exception exn ->
        Alcotest.fail
          (Printf.sprintf "decoder raised %s on %s" (Printexc.to_string exn)
             (String.escaped line))
  in
  let must_reject line =
    match decode line with
    | `Bad -> ()
    | `Ok -> Alcotest.fail ("should reject: " ^ String.escaped line)
  in
  (* truncated JSON *)
  must_reject {|{"id": 1, "sql": "SELECT 1;"|};
  must_reject {|{"sql": "SELECT|};
  (* wrong-typed fields *)
  must_reject {|{"sql": 42}|};
  must_reject {|{"sql": ["SELECT 1;"]}|};
  must_reject {|{"sql": "SELECT 1;", "opts": 7}|};
  must_reject {|{"sql": "SELECT 1;", "opts": {"rewrite": "yes"}}|};
  must_reject {|{"sql": "SELECT 1;", "opts": {"rewrite": 1}}|};
  must_reject {|{"sql": "SELECT 1;", "opts": {"deadline_ms": -3}}|};
  must_reject {|{"sql": "SELECT 1;", "opts": {"deadline_ms": 0}}|};
  must_reject {|{"sql": "SELECT 1;", "opts": {"deadline_ms": "fast"}}|};
  (* scalars and arrays where an object belongs *)
  must_reject "42";
  must_reject {|["sql", "SELECT 1;"]|};
  must_reject "null";
  (* raw NUL byte breaks JSON framing: typed rejection, no crash *)
  must_reject "{\"sql\": \"SELECT\x00 1;\"}";
  (* duplicate keys and escaped NUL must not crash the decoder; whether
     they decode or reject is the JSON layer's choice *)
  ignore (decode {|{"sql": "SELECT 1;", "sql": 42}|});
  ignore (decode {|{"sql": "SELECT   1;"}|});
  (* unknown opts stay ignored (forward compatibility) *)
  match
    Server.Wire.request_of_line
      {|{"sql": "SELECT 1;", "opts": {"future_flag": [1, 2]}}|}
  with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Server.Wire.error_to_string e)

let raw_tcp_io addr =
  match addr with
  | Server.Listener.Tcp (h, p) ->
      let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect s (Unix.ADDR_INET (Unix.inet_addr_of_string h, p));
      Server.Lineio.make s
  | _ -> Alcotest.fail "tcp expected"

let expect_error_line io code =
  match Server.Lineio.read_line io with
  | Some line -> (
      match Server.Wire.response_of_line line with
      | Ok (Server.Wire.Failed (_, e)) ->
          Alcotest.(check string) "error code" code e.Server.Wire.we_code
      | _ -> Alcotest.fail ("expected typed " ^ code))
  | None -> Alcotest.fail "no response"

let test_adversarial_requests_live () =
  with_server (fun addr ->
      let io = raw_tcp_io addr in
      Fun.protect ~finally:(fun () -> Server.Lineio.close io) (fun () ->
          Server.Lineio.write_line io {|{"sql": "SELECT 1;", "opts": {"rewrite": "yes"}}|};
          expect_error_line io "bad_request";
          Server.Lineio.write_line io "{\"sql\": \"SELECT\x00 1;\"}";
          expect_error_line io "bad_request";
          (* the connection survives every rejection *)
          Server.Lineio.write_line io
            {|{"id": 9, "sql": "SELECT COUNT(*) AS n FROM sales;"}|};
          match Server.Lineio.read_line io with
          | Some line -> (
              match Server.Wire.response_of_line line with
              | Ok (Server.Wire.Reply r) ->
                  Alcotest.(check int) "id echoed" 9
                    (match r.Server.Wire.rp_id with J.Int n -> n | _ -> -1)
              | _ -> Alcotest.fail "valid request after garbage must succeed")
          | None -> Alcotest.fail "no response"))

(* A 9 MiB frame: one typed bad_request, stream resynchronized, the next
   request on the same connection served normally. *)
let test_oversize_frame_resync () =
  with_server (fun addr ->
      let io = raw_tcp_io addr in
      Fun.protect ~finally:(fun () -> Server.Lineio.close io) (fun () ->
          Server.Lineio.write_line io (String.make (9 * 1024 * 1024) 'x');
          expect_error_line io "bad_request";
          Server.Lineio.write_line io
            {|{"id": 1, "sql": "SELECT COUNT(*) AS n FROM sales;"}|};
          match Server.Lineio.read_line io with
          | Some line -> (
              match Server.Wire.response_of_line line with
              | Ok (Server.Wire.Reply _) -> ()
              | _ -> Alcotest.fail "request after oversize frame must succeed")
          | None -> Alcotest.fail "no response after resync"))

(* --- deadlines and the overload ladder ---------------------------------- *)

let sum_by_region_sql =
  "SELECT region, SUM(amount) AS total FROM sales GROUP BY region ORDER BY \
   region;"

let check_east_west (r : Server.Wire.reply) =
  match r.Server.Wire.rp_results with
  | [ t ] -> (
      match expect_table t with
      | _, [ [| V.Str "east"; V.Int 30 |]; [| V.Str "west"; V.Int 5 |] ] -> ()
      | _ -> Alcotest.fail "degraded answer must still be correct")
  | _ -> Alcotest.fail "expected one outcome"

let test_request_deadline_degrades () =
  (* an (absurd) 0.001 ms deadline trips at the first planning check: the
     reply degrades to the base plan, annotated, still correct *)
  with_server ~request_deadline_ms:0.001 (fun addr ->
      let c = Server.Client.connect_addr addr in
      Fun.protect ~finally:(fun () -> Server.Client.close c) (fun () ->
          match Server.Client.request c sum_by_region_sql with
          | Ok r ->
              check_east_west r;
              Alcotest.(check bool) "deadline annotated" true
                (List.mem "deadline" r.Server.Wire.rp_degraded)
          | Error e -> Alcotest.fail (Server.Wire.error_to_string e)))

let test_opts_deadline_degrades () =
  (* same, but the deadline travels in the request itself *)
  with_server (fun addr ->
      let c = Server.Client.connect_addr addr in
      Fun.protect ~finally:(fun () -> Server.Client.close c) (fun () ->
          (match Server.Client.request c ~deadline_ms:0.001 sum_by_region_sql with
          | Ok r ->
              check_east_west r;
              Alcotest.(check bool) "deadline annotated" true
                (List.mem "deadline" r.Server.Wire.rp_degraded)
          | Error e -> Alcotest.fail (Server.Wire.error_to_string e));
          (* and without it, the same connection serves full quality *)
          match Server.Client.request c sum_by_region_sql with
          | Ok r ->
              Alcotest.(check (list string)) "no annotation" []
                r.Server.Wire.rp_degraded
          | Error e -> Alcotest.fail (Server.Wire.error_to_string e)))

let test_degrade_watermark_rung () =
  (* watermark 0 = permanently pressured: base plans, annotated replies *)
  with_server ~degrade_watermark:0 (fun addr ->
      let c = Server.Client.connect_addr addr in
      Fun.protect ~finally:(fun () -> Server.Client.close c) (fun () ->
          match Server.Client.request c sum_by_region_sql with
          | Ok r ->
              check_east_west r;
              Alcotest.(check bool) "overload annotated" true
                (List.mem "overload" r.Server.Wire.rp_degraded)
          | Error e -> Alcotest.fail (Server.Wire.error_to_string e)))

let test_shed_carries_retry_after () =
  with_server ~domains:1 ~queue_depth:1 ~retry_after_ms:123 (fun addr ->
      let a = Server.Client.connect_addr addr in
      (match Server.Client.request a "SELECT COUNT(*) AS n FROM sales;" with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Server.Wire.error_to_string e));
      let b = Server.Client.connect_addr addr in
      let c = Server.Client.connect_addr addr in
      (match Server.Client.request c "SELECT COUNT(*) AS n FROM sales;" with
      | Error e ->
          Alcotest.(check string) "code" "overloaded" e.Server.Wire.we_code;
          Alcotest.(check (option int)) "hint" (Some 123)
            e.Server.Wire.we_retry_after_ms
      | Ok _ -> Alcotest.fail "expected overloaded"
      | exception _ -> () (* rejection may close before the request is read *));
      Server.Client.close c;
      Server.Client.close b;
      Server.Client.close a)

(* --- retrying client under wire faults ---------------------------------- *)

let test_sql_idempotent () =
  Alcotest.(check bool) "select" true
    (Server.Client.sql_idempotent "SELECT COUNT(*) AS n FROM sales;");
  Alcotest.(check bool) "explain" true
    (Server.Client.sql_idempotent
       "EXPLAIN REWRITE SELECT COUNT(*) AS n FROM sales;");
  Alcotest.(check bool) "insert" false
    (Server.Client.sql_idempotent "INSERT INTO sales VALUES ('x', 1);");
  Alcotest.(check bool) "mixed script" false
    (Server.Client.sql_idempotent
       "SELECT COUNT(*) AS n FROM sales; INSERT INTO sales VALUES ('x', 1);");
  Alcotest.(check bool) "garbage is conservative" false
    (Server.Client.sql_idempotent "DROP TH3 B4SS;")

let test_client_retries_wire_faults () =
  with_server (fun addr ->
      Guard.Fault.disarm_all ();
      Fun.protect ~finally:Guard.Fault.disarm_all (fun () ->
          let c = Server.Client.connect_addr ~timeout_ms:2000. addr in
          Fun.protect ~finally:(fun () -> Server.Client.close c) (fun () ->
              List.iter
                (fun point ->
                  Guard.Fault.arm point ~after:1;
                  match
                    Server.Client.request_robust c ~attempts:4
                      sum_by_region_sql
                  with
                  | Ok r -> check_east_west r
                  | Error f ->
                      Alcotest.fail
                        (Printf.sprintf "retry across %s failed: %s"
                           (Guard.Fault.point_name point)
                           (Server.Client.failure_to_string f)))
                [
                  Guard.Fault.Wire_corrupt;
                  Guard.Fault.Wire_disconnect;
                  Guard.Fault.Wire_partial_write;
                ])))

let test_ambiguous_dml_not_retried () =
  with_server (fun addr ->
      Guard.Fault.disarm_all ();
      Fun.protect ~finally:Guard.Fault.disarm_all (fun () ->
          let c = Server.Client.connect_addr ~timeout_ms:2000. addr in
          Fun.protect ~finally:(fun () -> Server.Client.close c) (fun () ->
              (* the reply to the INSERT is swallowed after execution: the
                 ack is ambiguous, and a blind retry would double-insert *)
              Guard.Fault.arm Guard.Fault.Wire_disconnect ~after:1;
              (match
                 Server.Client.request_robust c ~attempts:4
                   "INSERT INTO sales VALUES ('ambig', 1);"
               with
              | Error (Server.Client.Conn_error _) -> ()
              | Error (Server.Client.Server_error e) ->
                  Alcotest.fail
                    ("expected ambiguous conn failure, got "
                    ^ Server.Wire.error_to_string e)
              | Ok _ -> Alcotest.fail "swallowed ack must surface as failure");
              (* the write executed exactly once — which is why the client
                 must not have retried it *)
              match
                Server.Client.request_robust c ~attempts:4
                  "SELECT COUNT(*) AS n FROM sales WHERE region = 'ambig';"
              with
              | Ok r -> (
                  match r.Server.Wire.rp_results with
                  | [ t ] -> (
                      match expect_table t with
                      | _, [ [| V.Int 1 |] ] -> ()
                      | _, rows ->
                          Alcotest.fail
                            (Printf.sprintf "expected exactly 1 row, got %d"
                               (List.length rows)))
                  | _ -> Alcotest.fail "expected one outcome")
              | Error f ->
                  Alcotest.fail (Server.Client.failure_to_string f))))

let test_client_timeout_and_stall_retry () =
  with_server (fun addr ->
      Guard.Fault.disarm_all ();
      let saved_stall = !Guard.Fault.wire_stall_ms in
      Fun.protect
        ~finally:(fun () ->
          Guard.Fault.disarm_all ();
          Guard.Fault.set_wire_stall_ms saved_stall)
        (fun () ->
          Guard.Fault.set_wire_stall_ms 500.;
          let c = Server.Client.connect_addr ~timeout_ms:100. addr in
          Fun.protect ~finally:(fun () -> Server.Client.close c) (fun () ->
              (* the serving loop stalls past the client's timeout; the
                 read-only request retries on a fresh connection *)
              Guard.Fault.arm Guard.Fault.Wire_stall_read ~after:1;
              match
                Server.Client.request_robust c ~attempts:4 sum_by_region_sql
              with
              | Ok r -> check_east_west r
              | Error f ->
                  Alcotest.fail (Server.Client.failure_to_string f))))

(* --- idle/stall reaping and metrics balance ------------------------------ *)

let test_idle_reap_and_mid_frame_stall () =
  with_server ~idle_timeout_ms:80. ~io_timeout_ms:120. (fun addr ->
      (* idle peer: reaped quietly after ~80ms *)
      let idle = raw_tcp_io addr in
      (match Server.Lineio.read_line idle with
      | None -> () (* server closed on us: the reap *)
      | Some l -> Alcotest.fail ("unexpected reply to idle conn: " ^ l)
      | exception _ -> ());
      Server.Lineio.close idle;
      (* mid-frame staller: typed error, then hangup *)
      let stall = raw_tcp_io addr in
      Server.Lineio.write_raw stall {|{"sql": "SELECT|};
      (match Server.Lineio.read_line stall with
      | Some line -> (
          match Server.Wire.response_of_line line with
          | Ok (Server.Wire.Failed (_, e)) ->
              Alcotest.(check string) "stall code" "bad_request"
                e.Server.Wire.we_code
          | _ -> Alcotest.fail "expected typed stall error")
      | None -> Alcotest.fail "stalled conn reaped without the typed error"
      | exception _ -> ());
      Server.Lineio.close stall;
      (* a well-behaved client on the same server is untouched *)
      let c = Server.Client.connect_addr addr in
      Fun.protect ~finally:(fun () -> Server.Client.close c) (fun () ->
          match Server.Client.request c "SELECT COUNT(*) AS n FROM sales;" with
          | Ok _ -> ()
          | Error e -> Alcotest.fail (Server.Wire.error_to_string e)))

(* Every error path must put its gauges back: after a server that saw
   normal traffic, garbage, an oversize frame, a handler crash and forced
   disconnects has fully stopped, the registry's server gauges read 0. *)
let test_metrics_balance_after_churn () =
  Guard.Fault.disarm_all ();
  with_server ~domains:2 ~queue_depth:4 (fun addr ->
      (* normal round trip *)
      let c = Server.Client.connect_addr addr in
      ignore (Server.Client.request c "SELECT COUNT(*) AS n FROM sales;");
      Server.Client.close c;
      (* oversize frame + garbage on one connection *)
      let io = raw_tcp_io addr in
      Server.Lineio.write_line io (String.make (9 * 1024 * 1024) 'y');
      expect_error_line io "bad_request";
      Server.Lineio.write_line io "not json";
      expect_error_line io "bad_request";
      Server.Lineio.close io;
      (* a handler crash (accept fault) *)
      Guard.Fault.arm Guard.Fault.Accept ~after:1;
      let f = Server.Client.connect_addr addr in
      (match Server.Client.request f "SELECT 1;" with
      | Ok _ | Error _ -> ()
      | exception _ -> ());
      Server.Client.close f;
      Guard.Fault.disarm_all ();
      (* a client that vanishes without a word *)
      let g = raw_tcp_io addr in
      Server.Lineio.write_raw g {|{"sql"|};
      Server.Lineio.close g;
      Unix.sleepf 0.05);
  (* with_server has stopped the listener: workers joined, conns closed *)
  Alcotest.(check (float 0.)) "server.active back to 0" 0.
    (Obs.Metrics.gauge_value (Obs.Metrics.gauge "server.active"));
  Alcotest.(check (float 0.)) "server.queue_depth back to 0" 0.
    (Obs.Metrics.gauge_value (Obs.Metrics.gauge "server.queue_depth"))

(* --- Lineio edge cases -------------------------------------------------- *)

(* A Lineio reader over the bytes of a temp file — read_line only needs a
   readable fd, so a file stands in for a socket. *)
let with_lineio_over bytes f =
  let path = Filename.temp_file "astql-lineio" ".txt" in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc bytes);
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  let io = Server.Lineio.make fd in
  Fun.protect
    ~finally:(fun () ->
      Server.Lineio.close io;
      Sys.remove path)
    (fun () -> f io)

let test_lineio_torn_line_at_eof () =
  with_lineio_over "complete\ntorn tail no newline" (fun io ->
      Alcotest.(check (option string))
        "whole line" (Some "complete")
        (Server.Lineio.read_line io);
      (* a peer that dies mid-line: the partial line is surfaced once... *)
      Alcotest.(check (option string))
        "torn line at EOF" (Some "torn tail no newline")
        (Server.Lineio.read_line io);
      (* ...and EOF is stable afterwards *)
      Alcotest.(check (option string)) "eof" None (Server.Lineio.read_line io);
      Alcotest.(check (option string)) "eof again" None
        (Server.Lineio.read_line io))

let test_lineio_line_cap () =
  let cap = Server.Lineio.max_line_bytes in
  (* exactly at the cap passes — the limit is on exceeding it *)
  with_lineio_over (String.make cap 'a' ^ "\nnext\n") (fun io ->
      (match Server.Lineio.read_line io with
      | Some l -> Alcotest.(check int) "exactly-at-cap length" cap (String.length l)
      | None -> Alcotest.fail "line at cap must be readable");
      Alcotest.(check (option string))
        "stream continues" (Some "next")
        (Server.Lineio.read_line io));
  (* one byte over raises instead of buffering without bound *)
  with_lineio_over (String.make (cap + 1) 'a' ^ "\n") (fun io ->
      match Server.Lineio.read_line io with
      | exception Server.Lineio.Line_too_long -> ()
      | _ -> Alcotest.fail "over-cap line must raise Line_too_long")

let test_lineio_crlf () =
  with_lineio_over "a\r\nb\nc\r\r\n\r\ntorn\r" (fun io ->
      let next () = Server.Lineio.read_line io in
      Alcotest.(check (option string)) "crlf stripped" (Some "a") (next ());
      Alcotest.(check (option string)) "bare lf untouched" (Some "b") (next ());
      (* only the final CR of a CRLF is protocol framing *)
      Alcotest.(check (option string)) "inner cr kept" (Some "c\r") (next ());
      Alcotest.(check (option string)) "empty crlf line" (Some "") (next ());
      (* CR stripping applies to the torn-at-EOF path too *)
      Alcotest.(check (option string)) "torn with cr" (Some "torn") (next ());
      Alcotest.(check (option string)) "eof" None (next ()))

let suite =
  [
    Alcotest.test_case "JSON parser" `Quick test_json_parse;
    Alcotest.test_case "JSON round trip" `Quick test_json_roundtrip;
    Alcotest.test_case "wire value round trip" `Quick test_value_roundtrip;
    Alcotest.test_case "request/response round trip" `Quick test_round_trip;
    Alcotest.test_case "published DML visible to new connections" `Quick
      test_dml_visible_across_connections;
    Alcotest.test_case "typed errors + statement rollback" `Quick
      test_typed_errors;
    Alcotest.test_case "bad request lines" `Quick test_bad_request_line;
    Alcotest.test_case "overload sheds with typed error" `Quick
      test_overload_typed_rejection;
    Alcotest.test_case "accept fault contained to one connection" `Quick
      test_accept_fault_is_contained;
    Alcotest.test_case "unix socket + opts.rewrite" `Quick
      test_unix_socket_and_rewrite_opt;
    Alcotest.test_case "adversarial request decoding" `Quick
      test_adversarial_request_decode;
    Alcotest.test_case "adversarial requests over a live socket" `Quick
      test_adversarial_requests_live;
    Alcotest.test_case "oversize frame resynchronizes" `Quick
      test_oversize_frame_resync;
    Alcotest.test_case "server-default deadline degrades" `Quick
      test_request_deadline_degrades;
    Alcotest.test_case "opts.deadline_ms degrades per request" `Quick
      test_opts_deadline_degrades;
    Alcotest.test_case "degrade watermark serves base plans" `Quick
      test_degrade_watermark_rung;
    Alcotest.test_case "shed reply carries retry_after_ms" `Quick
      test_shed_carries_retry_after;
    Alcotest.test_case "sql_idempotent classification" `Quick
      test_sql_idempotent;
    Alcotest.test_case "client retries across wire faults" `Quick
      test_client_retries_wire_faults;
    Alcotest.test_case "ambiguous DML ack is not retried" `Quick
      test_ambiguous_dml_not_retried;
    Alcotest.test_case "client timeout + stalled server retry" `Quick
      test_client_timeout_and_stall_retry;
    Alcotest.test_case "idle reap + mid-frame stall" `Quick
      test_idle_reap_and_mid_frame_stall;
    Alcotest.test_case "metrics balance after churn" `Quick
      test_metrics_balance_after_churn;
    Alcotest.test_case "lineio torn line at EOF" `Quick
      test_lineio_torn_line_at_eof;
    Alcotest.test_case "lineio 8 MiB line cap" `Quick test_lineio_line_cap;
    Alcotest.test_case "lineio CRLF tolerance" `Quick test_lineio_crlf;
  ]
