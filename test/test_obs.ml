(* The observability layer: metrics-registry semantics (counters, gauges,
   histogram buckets, the JSON export schema shared with
   BENCH_results.json) and structured planning traces — span trees, typed
   rejection reasons, and the navigator/match instrumentation on one
   accepted and one rejected candidate from the paper's figures. *)

module M = Obs.Metrics
module T = Obs.Trace
open Helpers

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ---------------- metrics registry ---------------- *)

let test_counter () =
  let c = M.counter "obst.count" in
  let c' = M.counter "obst.count" in
  Alcotest.(check bool) "interning returns the same handle" true (c == c');
  let before = M.counter_value c in
  M.incr c;
  M.add c 4;
  Alcotest.(check int) "incr + add" (before + 5) (M.counter_value c')

let test_gauge () =
  let g = M.gauge "obst.gauge" in
  M.set g 2.5;
  Alcotest.(check (float 1e-9)) "set/read" 2.5 (M.gauge_value g);
  M.set g 0.25;
  Alcotest.(check (float 1e-9)) "overwrite" 0.25 (M.gauge_value g)

let test_histogram () =
  let h = M.histogram ~bounds:[| 1.; 10.; 100. |] "obst.hist" in
  List.iter (M.observe h) [ 0.5; 1.0; 7.; 50.; 5000. ];
  Alcotest.(check int) "count" 5 (M.hist_count h);
  Alcotest.(check (float 1e-6)) "sum" 5058.5 (M.hist_sum h);
  (* inclusive upper bounds; the final slot is the overflow bucket *)
  Alcotest.(check (array int)) "bucket placement" [| 2; 1; 1; 1 |]
    (M.bucket_counts h);
  (* time records also on exception (and re-raises) *)
  (try M.time h (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "time on exception still observed" 6 (M.hist_count h)

let test_json_golden () =
  (* the schema BENCH_results.json embeds; prefix-filtered so the global
     registry's live planner metrics stay out of the comparison *)
  let c = M.counter "obsg.hits" in
  let g = M.gauge "obsg.ratio" in
  let h = M.histogram ~bounds:[| 1.; 10. |] "obsg.lat_ms" in
  M.add c 3;
  M.set g 0.5;
  List.iter (M.observe h) [ 0.4; 5.; 50. ];
  Alcotest.(check string) "metrics JSON schema"
    ("{\"counters\": {\"obsg.hits\": 3}, "
   ^ "\"gauges\": {\"obsg.ratio\": 0.5000}, "
   ^ "\"histograms\": {\"obsg.lat_ms\": {\"count\": 3, \"sum_ms\": 55.4000, "
   ^ "\"buckets\": [{\"le_ms\": 1.0000, \"count\": 1}, "
   ^ "{\"le_ms\": 10.0000, \"count\": 1}], \"overflow\": 1}}}")
    (Obs.Json.to_string (M.to_json ~prefix:"obsg." ()))

(* ---------------- trace mechanics ---------------- *)

let test_trace_spans () =
  let tr = T.create () in
  let trace = Some tr in
  let v =
    T.with_span trace ~kind:"plan" ~label:"q1"
      ~result:(fun n -> T.Accepted (string_of_int n))
      (fun () ->
        T.with_span trace ~kind:"candidate" ~label:"mv1" (fun () ->
            T.reject trace ~kind:"check" ~label:"" T.Agg_not_preserved;
            T.reject trace ~kind:"check" ~label:"" T.Agg_not_preserved;
            (* identical consecutive leaves dedup *)
            T.reject trace ~kind:"cost" ~label:"mv1"
              (T.Cost_not_better (10., 5.)));
        41 + 1)
  in
  Alcotest.(check int) "with_span is transparent" 42 v;
  (match T.roots tr with
  | [ root ] ->
      Alcotest.(check string) "root kind" "plan" root.T.sp_kind;
      Alcotest.(check bool) "root outcome" true
        (root.T.sp_outcome = T.Accepted "42");
      (match root.T.sp_children with
      | [ cand ] ->
          Alcotest.(check int) "dedup left two leaves" 2
            (List.length cand.T.sp_children)
      | _ -> Alcotest.fail "expected one candidate child")
  | _ -> Alcotest.fail "expected a single root");
  Alcotest.(check int) "rejections, pre-order" 2
    (List.length (T.rejections tr));
  Alcotest.(check string) "reason codes are stable" "aggregate-not-preserved"
    (T.reason_code T.Agg_not_preserved);
  let out = T.render tr in
  Alcotest.(check bool) "render names the typed reason" true
    (contains out "cost-not-better");
  (* an exception still pops the open span: the next span is a new root *)
  (try
     T.with_span trace ~kind:"plan" ~label:"boom" (fun () -> failwith "x")
   with Failure _ -> ());
  T.event trace ~kind:"plan" ~label:"after";
  Alcotest.(check int) "exception popped the span stack" 3
    (List.length (T.roots tr))

let test_trace_ring () =
  let rg = T.ring ~capacity:2 () in
  T.push rg "a" (T.create ());
  T.push rg "b" (T.create ());
  T.push rg "c" (T.create ());
  Alcotest.(check int) "bounded" 2 (T.ring_length rg);
  Alcotest.(check (list string)) "oldest evicted, oldest first"
    [ "b"; "c" ]
    (List.map fst (T.items rg));
  T.clear rg;
  Alcotest.(check int) "clear" 0 (T.ring_length rg)

(* ---------------- traces from the paper-figure matcher ---------------- *)

(* Table 1's schema (test_paper_figures.ml): Trans(flid, date). *)
let trans_catalog () =
  Catalog.add_table Catalog.empty
    {
      Catalog.tbl_name = "Trans";
      tbl_cols =
        [
          { Catalog.col_name = "flid"; col_ty = Data.Value.Tint; nullable = false };
          { Catalog.col_name = "date"; col_ty = Data.Value.Tdate; nullable = false };
        ];
      primary_key = [];
      unique_keys = [];
      foreign_keys = [];
    }

let nav_trace cat ~query ~ast =
  let tr = T.create () in
  let sites =
    Astmatch.Navigator.find_matches ~trace:tr cat ~query:(build cat query)
      ~ast:(build cat ast)
  in
  (sites, tr)

let test_trace_accepted_candidate () =
  let cat = trans_catalog () in
  (* the regroup case: query groups coarser than the summary (section 4.1.2) *)
  let sites, tr =
    nav_trace cat ~query:"select flid, count(*) as cnt from Trans group by flid"
      ~ast:
        "select flid, year(date) as year, count(*) as cnt from Trans group by \
         flid, year(date)"
  in
  Alcotest.(check bool) "matches" true (sites <> []);
  let out = T.render tr in
  Alcotest.(check bool) "navigate span present" true
    (contains out "navigate");
  Alcotest.(check bool) "match-pattern span present" true
    (contains out "match query box");
  Alcotest.(check bool) "site accepted" true
    (contains out "accepted")

let test_trace_rejected_candidate () =
  let cat = trans_catalog () in
  (* Table 1's trap: the summary's HAVING filtered away groups the query
     needs — the matcher must refuse, and say why in a typed reason *)
  let sites, tr =
    nav_trace cat ~query:"select flid, count(*) as cnt from Trans group by flid"
      ~ast:
        "select flid, year(date) as year, count(*) as cnt from Trans group by \
         flid, year(date) having count(*) > 2"
  in
  Alcotest.(check bool) "refused" true (sites = []);
  let rejs = T.rejections tr in
  Alcotest.(check bool) "typed rejection recorded" true (rejs <> []);
  List.iter
    (fun r ->
      let code = T.reason_code r in
      Alcotest.(check bool)
        (Printf.sprintf "code %S is kebab-case" code)
        true
        (String.length code > 0
        && String.for_all
             (fun ch -> (ch >= 'a' && ch <= 'z') || ch = '-')
             code))
    rejs;
  let out = T.render tr in
  Alcotest.(check bool) "render names the rejection" true
    (contains out "rejected")

let test_explain_verbose_names_pattern_and_reason () =
  let sn = Mvstore.Session.create () in
  ignore
    (Mvstore.Session.exec_sql sn
       "CREATE TABLE Trans (flid INT NOT NULL, date DATE NOT NULL)");
  ignore
    (Mvstore.Session.exec_sql sn
       "INSERT INTO Trans VALUES (1, DATE '1990-01-03'), (1, DATE \
        '1990-02-10'), (1, DATE '1990-04-12'), (1, DATE '1991-10-20')");
  ignore
    (Mvstore.Session.exec_sql sn
       "CREATE SUMMARY TABLE ast1 AS select flid, year(date) as year, \
        count(*) as cnt from Trans group by flid, year(date) having count(*) \
        > 2");
  let q =
    Sqlsyn.Parser.parse_query
      "select flid, count(*) as cnt from Trans group by flid"
  in
  let out = Mvstore.Session.explain ~verbose:true sn q in
  Alcotest.(check bool) "verbose explain shows the match attempt" true
    (contains out "match query box");
  Alcotest.(check bool) "verbose explain shows a typed rejection" true
    (contains out "rejected")

let suite =
  [
    Alcotest.test_case "counter semantics" `Quick test_counter;
    Alcotest.test_case "gauge semantics" `Quick test_gauge;
    Alcotest.test_case "histogram buckets" `Quick test_histogram;
    Alcotest.test_case "metrics JSON golden" `Quick test_json_golden;
    Alcotest.test_case "span tree + typed rejections" `Quick test_trace_spans;
    Alcotest.test_case "trace ring buffer" `Quick test_trace_ring;
    Alcotest.test_case "trace: accepted candidate" `Quick
      test_trace_accepted_candidate;
    Alcotest.test_case "trace: rejected candidate" `Quick
      test_trace_rejected_candidate;
    Alcotest.test_case "EXPLAIN REWRITE VERBOSE" `Quick
      test_explain_verbose_names_pattern_and_reason;
  ]
