(* Cross-cutting integration tests: multi-hop RI losslessness (snowflake
   chains), paper-shape assertions on the rewritten SQL, EXPLAIN plan
   output, and a full scripted session. *)

module Sess = Mvstore.Session
module R = Data.Relation
open Helpers

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let star_db =
  lazy
    (Engine.Db.of_tables
       (Workload.Star_schema.catalog ())
       (Workload.Star_schema.generate
          {
            Workload.Star_schema.default_params with
            n_custs = 4;
            trans_per_acct_year = 25;
          }))

(* ---------------- snowflake losslessness ---------------- *)

let test_two_hop_extra_chain_lossless () =
  (* the AST joins Trans -> Acct -> Cust; the query touches neither
     dimension. Both extra joins ride declared RI constraints. *)
  let db = Lazy.force star_db in
  let rewritten, equal =
    rewrite_check db
      ~query:"select tid, qty from Trans where disc > 0.1"
      ~ast:
        "select tid, qty, status, segment from Trans, Acct, Cust where faid \
         = aid and Acct.cid = Cust.cid and disc > 0.1"
  in
  Alcotest.(check bool) "chain lossless" true rewritten;
  Alcotest.(check bool) "results equal" true equal

let test_two_hop_chain_broken_by_filter () =
  let db = Lazy.force star_db in
  let rewritten, _ =
    rewrite_check db
      ~query:"select tid, qty from Trans"
      ~ast:
        "select tid, qty from Trans, Acct, Cust where faid = aid and \
         Acct.cid = Cust.cid and segment = 'consumer'"
  in
  Alcotest.(check bool) "filtered chain is lossy" false rewritten

let test_aggregate_over_snowflake () =
  let db = Lazy.force star_db in
  let rewritten, equal =
    rewrite_check db
      ~query:
        "select segment, count(*) as c from Trans, Acct, Cust where faid = \
         aid and Acct.cid = Cust.cid group by segment"
      ~ast:
        "select segment, year(date) as y, count(*) as c from Trans, Acct, \
         Cust where faid = aid and Acct.cid = Cust.cid group by segment, \
         year(date)"
  in
  Alcotest.(check bool) "snowflake aggregate rewrite" true rewritten;
  Alcotest.(check bool) "results equal" true equal

(* ---------------- paper-shape assertions ---------------- *)

let rewrite_sql (c : Workload.Paper_queries.case) =
  let db = Lazy.force star_db in
  let cat = Engine.Db.catalog db in
  let qg = build cat c.query in
  let ag = build cat c.ast in
  match Astmatch.Navigator.find_matches cat ~query:qg ~ast:ag with
  | [] -> None
  | { Astmatch.Navigator.site_box; site_result; _ } :: _ ->
      let mv_cols =
        Qgm.Box.output_cols (Qgm.Graph.box ag (Qgm.Graph.root ag))
      in
      Some
        (Qgm.Unparse.to_sql
           (Astmatch.Rewrite.apply ~query:qg ~target:site_box
              ~result:site_result ~mv_table:c.ast_name ~mv_cols))

let case name =
  List.find
    (fun (c : Workload.Paper_queries.case) -> c.name = name)
    Workload.Paper_queries.cases

let test_fig8_no_regroup () =
  (* the 1:N rejoin rule: NewQ7 has no GROUP BY in its compensation *)
  match rewrite_sql (case "fig8_q7") with
  | None -> Alcotest.fail "no rewrite"
  | Some sql ->
      Alcotest.(check bool) "no regroup box" false (contains sql "GROUP BY")

let test_fig13_slice_no_regroup () =
  match rewrite_sql (case "fig13_q11_1") with
  | None -> Alcotest.fail "no rewrite"
  | Some sql ->
      Alcotest.(check bool) "slices month IS NULL" true
        (contains sql "month IS NULL");
      Alcotest.(check bool) "slices faid IS NULL" true
        (contains sql "faid IS NULL");
      Alcotest.(check bool) "no regroup" false (contains sql "GROUP BY")

let test_fig14_disjunctive_slice () =
  match rewrite_sql (case "fig14_q12_1") with
  | None -> Alcotest.fail "no rewrite"
  | Some sql ->
      Alcotest.(check bool) "disjunction present" true (contains sql " OR ");
      Alcotest.(check bool) "no regroup" false (contains sql "GROUP BY")

let test_fig14_fallback_regroups_by_sets () =
  match rewrite_sql (case "fig14_q12_2") with
  | None -> Alcotest.fail "no rewrite"
  | Some sql ->
      Alcotest.(check bool) "multidimensional regroup" true
        (contains sql "GROUPING SETS")

let test_fig2_resums () =
  match rewrite_sql (case "fig2_q1") with
  | None -> Alcotest.fail "no rewrite"
  | Some sql ->
      Alcotest.(check bool) "derives HAVING over SUM(cnt)" true
        (contains sql "SUM(AST1.cnt)")

(* ---------------- EXPLAIN plan ---------------- *)

let test_explain_plan () =
  let sn = Sess.create () in
  ignore
    (Sess.exec_sql sn
       "CREATE TABLE t (g INT NOT NULL, v INT NOT NULL); \
        INSERT INTO t VALUES (1, 2), (1, 3), (2, 4);");
  match Sess.exec_sql sn "EXPLAIN SELECT g, SUM(v) AS s FROM t GROUP BY g;" with
  | [ Sess.Plan p ] ->
      Alcotest.(check bool) "group node" true (contains p "GROUP BY g");
      Alcotest.(check bool) "scan node" true (contains p "SCAN t");
      Alcotest.(check bool) "work estimate" true
        (contains p "total estimated work")
  | _ -> Alcotest.fail "expected a plan"

let test_explain_plan_shows_routed () =
  let sn = Sess.create () in
  ignore
    (Sess.exec_sql sn
       "CREATE TABLE t (g INT NOT NULL, v INT NOT NULL); \
        INSERT INTO t VALUES (1, 2), (1, 3), (2, 4); \
        CREATE SUMMARY TABLE m AS SELECT g, SUM(v) AS s, COUNT(*) AS c FROM \
        t GROUP BY g;");
  match Sess.exec_sql sn "EXPLAIN SELECT g, SUM(v) AS s FROM t GROUP BY g;" with
  | [ Sess.Plan p ] ->
      Alcotest.(check bool) "plan scans the summary" true (contains p "SCAN m")
  | _ -> Alcotest.fail "expected a plan"

(* ---------------- scripted session ---------------- *)

let test_scripted_session () =
  let sn = Sess.create () in
  let out =
    Sess.exec_sql sn
      "CREATE TABLE region (rid INT NOT NULL PRIMARY KEY, rname VARCHAR NOT \
       NULL); \
       CREATE TABLE sales (sid INT NOT NULL PRIMARY KEY, rid INT NOT NULL, \
       amount INT NOT NULL, FOREIGN KEY (rid) REFERENCES region (rid)); \
       INSERT INTO region VALUES (1, 'east'), (2, 'west'); \
       INSERT INTO sales VALUES (1, 1, 10), (2, 1, 20), (3, 2, 5); \
       CREATE SUMMARY TABLE s_by_r AS SELECT rid, COUNT(*) AS c, SUM(amount) \
       AS total FROM sales GROUP BY rid; \
       SELECT rname, SUM(amount) AS total FROM sales, region WHERE \
       sales.rid = region.rid GROUP BY rname ORDER BY rname; \
       INSERT INTO sales VALUES (4, 2, 50); \
       DELETE FROM sales WHERE sid = 1; \
       SELECT rname, SUM(amount) AS total FROM sales, region WHERE \
       sales.rid = region.rid GROUP BY rname ORDER BY rname;"
  in
  let tables =
    List.filter_map (function Sess.Table r -> Some r | _ -> None) out
  in
  match tables with
  | [ before; after ] ->
      Alcotest.(check (list (list string)))
        "before"
        [ [ "east"; "30" ]; [ "west"; "5" ] ]
        (List.map (List.map Data.Value.to_string)
           (List.map Array.to_list (R.rows before)));
      Alcotest.(check (list (list string)))
        "after insert+delete"
        [ [ "east"; "20" ]; [ "west"; "55" ] ]
        (List.map (List.map Data.Value.to_string)
           (List.map Array.to_list (R.rows after)));
      (* the summary absorbed both mutations and is still routing *)
      let q =
        Sqlsyn.Parser.parse_query
          "SELECT rid, SUM(amount) AS total FROM sales GROUP BY rid"
      in
      let _, steps = Sess.run_query sn q in
      Alcotest.(check bool) "still routed via summary" true (steps <> [])
  | _ -> Alcotest.fail "expected two result tables"

let suite =
  [
    Alcotest.test_case "two-hop RI chain" `Quick test_two_hop_extra_chain_lossless;
    Alcotest.test_case "broken chain" `Quick test_two_hop_chain_broken_by_filter;
    Alcotest.test_case "snowflake aggregate" `Quick test_aggregate_over_snowflake;
    Alcotest.test_case "fig8 shape: no regroup" `Quick test_fig8_no_regroup;
    Alcotest.test_case "fig13 shape: slice only" `Quick
      test_fig13_slice_no_regroup;
    Alcotest.test_case "fig14 shape: disjunctive slice" `Quick
      test_fig14_disjunctive_slice;
    Alcotest.test_case "fig14 shape: gs regroup" `Quick
      test_fig14_fallback_regroups_by_sets;
    Alcotest.test_case "fig2 shape: re-sum" `Quick test_fig2_resums;
    Alcotest.test_case "explain plan" `Quick test_explain_plan;
    Alcotest.test_case "explain shows routed plan" `Quick
      test_explain_plan_shows_routed;
    Alcotest.test_case "scripted session" `Quick test_scripted_session;
  ]
