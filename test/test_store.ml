(* The MV store: definition, catalog registration, full and incremental
   refresh, staleness. The key property: after any sequence of inserts, an
   incrementally maintained summary equals a from-scratch recomputation. *)

module R = Data.Relation
module V = Data.Value
module S = Mvstore.Store
open Helpers

let fresh_db () = tiny_db ()

let define db name sql =
  S.define S.empty db ~name ~sql

let test_define_registers_table () =
  let store, db =
    define (fresh_db ()) "m"
      "select grp, count(*) as c, sum(v) as s from fact group by grp"
  in
  Alcotest.(check bool) "entry exists" true (S.find store "m" <> None);
  Alcotest.(check bool) "catalog table" true
    (Catalog.mem_table (Engine.Db.catalog db) "m");
  let rel = Engine.Db.get_exn db "m" in
  Alcotest.(check int) "materialized" 2 (R.cardinality rel);
  let e = Option.get (S.find store "m") in
  Alcotest.(check bool) "fresh" true e.S.e_fresh;
  Alcotest.(check (list string)) "tables" [ "fact" ] e.S.e_tables

let test_incr_plan_detection () =
  let plan_of sql =
    let store, _ = define (fresh_db ()) "m" sql in
    (Option.get (S.find store "m")).S.e_incr
  in
  Alcotest.(check bool) "count/sum/min/max ok" true
    (plan_of
       "select grp, count(*) as c, sum(v) as s, min(v) as mn, max(v) as mx \
        from fact group by grp"
    <> None);
  Alcotest.(check bool) "having blocks" true
    (plan_of "select grp, count(*) as c from fact group by grp having count(*) > 1"
    = None);
  Alcotest.(check bool) "avg blocks" true
    (plan_of "select grp, avg(v) as a from fact group by grp" = None);
  Alcotest.(check bool) "count distinct blocks" true
    (plan_of "select grp, count(distinct v) as c from fact group by grp" = None);
  Alcotest.(check bool) "grouping sets block" true
    (plan_of
       "select grp, count(*) as c from fact group by grouping sets((grp), ())"
    = None);
  Alcotest.(check bool) "join is maintainable" true
    (plan_of
       "select region, count(*) as c from fact, dims where dim = id group by \
        region"
    <> None)

let test_name_clashes () =
  let store, db = define (fresh_db ()) "m" "select grp, count(*) as c from fact group by grp" in
  (match S.define store db ~name:"m" ~sql:"select grp, count(*) as c from fact group by grp" with
  | exception S.Mv_error _ -> ()
  | _ -> Alcotest.fail "duplicate summary accepted");
  match S.define store db ~name:"fact" ~sql:"select grp, count(*) as c from fact group by grp" with
  | exception S.Mv_error _ -> ()
  | _ -> Alcotest.fail "clash with base table accepted"

let test_drop () =
  let store, db = define (fresh_db ()) "m" "select grp, count(*) as c from fact group by grp" in
  let store, db = S.drop store db "m" in
  Alcotest.(check bool) "entry gone" true (S.find store "m" = None);
  Alcotest.(check bool) "contents gone" true (Engine.Db.get db "m" = None);
  Alcotest.(check bool) "catalog entry gone" false
    (Catalog.mem_table (Engine.Db.catalog db) "m");
  (* re-creating under the same name must work *)
  let store, db =
    S.define store db ~name:"m"
      ~sql:"select grp, count(*) as c from fact group by grp"
  in
  Alcotest.(check bool) "recreated" true (S.find store "m" <> None);
  ignore db

let test_catalog_remove_table_guards () =
  let cat = tiny_catalog () in
  (* dims is referenced by fact's FK: dropping it must be refused *)
  (match Catalog.remove_table cat "dims" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "referenced table dropped");
  let cat' = Catalog.remove_table cat "fact" in
  Alcotest.(check bool) "fact removed" false (Catalog.mem_table cat' "fact");
  Alcotest.(check bool) "dims kept" true (Catalog.mem_table cat' "dims")

let test_incremental_matches_full ()
    =
  let store, db =
    define (fresh_db ()) "m"
      "select grp, count(*) as c, count(v) as cv, sum(v) as s, min(v) as mn, \
       max(v) as mx from fact group by grp"
  in
  let delta1 = [ [| i 10; i 1; s "x"; i 100 |]; [| i 11; i 3; s "z"; i 2 |] ] in
  let delta2 = [ [| i 12; i 1; s "z"; V.Null |] ] in
  let apply (store, db) rows =
    let store, db, _ = S.apply_insert store db ~table:"fact" ~rows in
    let current = Engine.Db.get_exn db "fact" in
    (store, Engine.Db.put db "fact" (R.append current rows))
  in
  let store, db = apply (store, db) delta1 in
  let store, db = apply (store, db) delta2 in
  let e = Option.get (S.find store "m") in
  Alcotest.(check bool) "still fresh" true e.S.e_fresh;
  let incremental = Engine.Db.get_exn db "m" in
  let recomputed = Engine.Exec.run db e.S.e_graph in
  Alcotest.(check bool) "incremental equals recomputation" true
    (R.bag_equal_by_name recomputed
       (R.project incremental (Array.to_list (R.columns recomputed))))

let test_non_incremental_goes_stale () =
  let store, db =
    define (fresh_db ()) "m"
      "select grp, count(*) as c from fact group by grp having count(*) > 1"
  in
  let rows = [ [| i 10; i 1; s "x"; i 1 |] ] in
  let store, db, went_stale = S.apply_insert store db ~table:"fact" ~rows in
  let e = Option.get (S.find store "m") in
  Alcotest.(check bool) "stale" false e.S.e_fresh;
  Alcotest.(check (list string)) "staleness reported" [ "m" ] went_stale;
  Alcotest.(check int) "excluded from rewriting" 0
    (List.length (S.rewritable store));
  (* refresh restores *)
  let db = Engine.Db.put db "fact" (R.append (Engine.Db.get_exn db "fact") rows) in
  let store, _db = S.refresh_full store db "m" in
  Alcotest.(check bool) "fresh again" true
    (Option.get (S.find store "m")).S.e_fresh;
  Alcotest.(check int) "rewritable again" 1 (List.length (S.rewritable store))

let test_unrelated_table_insert_ignored () =
  let store, db = define (fresh_db ()) "m" "select grp, count(*) as c from fact group by grp" in
  let store, _, went_stale =
    S.apply_insert store db ~table:"dims" ~rows:[ [| i 9; s "zz"; V.Null |] ]
  in
  Alcotest.(check (list string)) "nothing went stale" [] went_stale;
  Alcotest.(check bool) "still fresh" true
    (Option.get (S.find store "m")).S.e_fresh

(* ---------------- delete maintenance edge cases ---------------- *)

(* Delete the base rows AND fold the delta into the summaries; mirrors the
   session's ordering (maintenance sees the delta before the table shrinks). *)
let apply_delete_rows (store, db) rows =
  let store, db, went_stale = S.apply_delete store db ~table:"fact" ~rows in
  let current = Engine.Db.get_exn db "fact" in
  let doomed = R.create (Array.to_list (R.columns current)) rows in
  ((store, Engine.Db.put db "fact" (R.bag_diff current doomed)), went_stale)

let test_delete_nullable_sum_goes_stale () =
  (* v is nullable: subtracting from SUM(v) cannot restore the NULL that a
     group of all-NULL arguments requires, so deletes must not be folded *)
  let store, db =
    define (fresh_db ()) "m"
      "select grp, count(*) as c, sum(v) as s from fact group by grp"
  in
  let (store, _db), went_stale =
    apply_delete_rows (store, db) [ [| i 3; i 2; s "y"; i 5 |] ]
  in
  Alcotest.(check bool) "stale after delete" false
    (Option.get (S.find store "m")).S.e_fresh;
  Alcotest.(check (list string)) "reported stale" [ "m" ] went_stale

let test_delete_count_zero_removes_group () =
  (* SUM over the non-nullable k: delete-safe. Removing every "y" row must
     drop the group (COUNT reaches 0), matching a recomputation exactly *)
  let store, db =
    define (fresh_db ()) "m"
      "select grp, count(*) as c, sum(k) as sk from fact group by grp"
  in
  let doomed =
    [
      [| i 3; i 2; s "y"; i 5 |];
      [| i 5; i 3; s "y"; i 7 |];
      [| i 6; i 3; s "y"; i 7 |];
    ]
  in
  let (store, db), went_stale = apply_delete_rows (store, db) doomed in
  Alcotest.(check (list string)) "still fresh" [] went_stale;
  let e = Option.get (S.find store "m") in
  Alcotest.(check bool) "fresh" true e.S.e_fresh;
  let maintained = Engine.Db.get_exn db "m" in
  Alcotest.(check int) "y group removed" 1 (R.cardinality maintained);
  let recomputed = Engine.Exec.run db e.S.e_graph in
  Alcotest.(check bool) "incremental delete equals recompute" true
    (R.bag_equal_by_name recomputed
       (R.project maintained (Array.to_list (R.columns recomputed))))

let test_delete_minmax_goes_stale () =
  (* MIN/MAX cannot be maintained under deletion (the deleted row may have
     held the extremum); the summary must go stale, not silently drift *)
  let store, db =
    define (fresh_db ()) "m"
      "select grp, count(*) as c, min(k) as mn, max(k) as mx from fact \
       group by grp"
  in
  let (store, _db), went_stale =
    apply_delete_rows (store, db) [ [| i 2; i 1; s "x"; i 20 |] ]
  in
  Alcotest.(check bool) "stale after delete" false
    (Option.get (S.find store "m")).S.e_fresh;
  Alcotest.(check (list string)) "reported stale" [ "m" ] went_stale;
  Alcotest.(check int) "excluded from rewriting" 0
    (List.length (S.rewritable store))

(* property: random insert batches, incremental == full recompute *)
let arb_rows =
  QCheck.(
    list_of_size (Gen.int_range 1 5)
      (quad (int_range 100 10000) (int_range 1 3)
         (oneofl [ "x"; "y"; "z" ])
         (option small_signed_int)))

let prop_incremental_equals_full =
  QCheck.Test.make ~name:"incremental maintenance equals recompute" ~count:60
    QCheck.(list_of_size (Gen.int_range 1 4) arb_rows)
    (fun batches ->
      (* unique keys across batches *)
      let store, db =
        define (fresh_db ()) "m"
          "select grp, count(*) as c, sum(v) as sv, min(v) as mn, max(v) as \
           mx from fact group by grp"
      in
      let next_key = ref 100 in
      let state = ref (store, db) in
      List.iter
        (fun batch ->
          let rows =
            List.map
              (fun (_, dim, grp, v) ->
                incr next_key;
                [|
                  i !next_key; i dim; s grp;
                  (match v with Some x -> i x | None -> V.Null);
                |])
              batch
          in
          let store, db = !state in
          let store, db, _ = S.apply_insert store db ~table:"fact" ~rows in
          let db =
            Engine.Db.put db "fact" (R.append (Engine.Db.get_exn db "fact") rows)
          in
          state := (store, db))
        batches;
      let store, db = !state in
      let e = Option.get (S.find store "m") in
      let recomputed = Engine.Exec.run db e.S.e_graph in
      R.bag_equal recomputed
        (R.project (Engine.Db.get_exn db "m")
           (Array.to_list (R.columns recomputed))))

let suite =
  [
    Alcotest.test_case "define registers" `Quick test_define_registers_table;
    Alcotest.test_case "incremental plan detection" `Quick
      test_incr_plan_detection;
    Alcotest.test_case "name clashes" `Quick test_name_clashes;
    Alcotest.test_case "drop" `Quick test_drop;
    Alcotest.test_case "catalog remove guards" `Quick
      test_catalog_remove_table_guards;
    Alcotest.test_case "incremental equals full" `Quick
      test_incremental_matches_full;
    Alcotest.test_case "stale + refresh" `Quick test_non_incremental_goes_stale;
    Alcotest.test_case "unrelated inserts ignored" `Quick
      test_unrelated_table_insert_ignored;
    Alcotest.test_case "delete: nullable SUM goes stale" `Quick
      test_delete_nullable_sum_goes_stale;
    Alcotest.test_case "delete: COUNT reaching zero removes group" `Quick
      test_delete_count_zero_removes_group;
    Alcotest.test_case "delete: MIN/MAX goes stale" `Quick
      test_delete_minmax_goes_stale;
    QCheck_alcotest.to_alcotest prop_incremental_equals_full;
  ]
