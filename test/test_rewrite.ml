(* The rewriter: graph assembly mechanics, cost estimation, and cost-based
   routing across multiple summary tables. *)

module G = Qgm.Graph
module R = Data.Relation
open Helpers

let star_db =
  lazy
    (let params =
       {
         Workload.Star_schema.default_params with
         n_custs = 4;
         trans_per_acct_year = 30;
       }
     in
     Engine.Db.of_tables
       (Workload.Star_schema.catalog ())
       (Workload.Star_schema.generate params))

(* Register one MV: returns (db', mv record). *)
let with_mv db name sql =
  let cat = Engine.Db.catalog db in
  let ag = build cat sql in
  let rel = Engine.Exec.run db ag in
  let cols = Qgm.Typing.infer_outputs cat ag in
  let cat2 =
    Catalog.add_table cat
      {
        Catalog.tbl_name = name;
        tbl_cols =
          List.map
            (fun (n, ty) -> { Catalog.col_name = n; col_ty = ty; nullable = true })
            cols;
        primary_key = [];
        unique_keys = [];
        foreign_keys = [];
      }
  in
  let db = Engine.Db.put (Engine.Db.with_catalog db cat2) name rel in
  (db, { Astmatch.Rewrite.mv_name = name; mv_graph = ag; mv_version = 0 })

let test_apply_preserves_presentation () =
  let db = Lazy.force star_db in
  let db, mv =
    with_mv db "m1" "select flid, count(*) as c from Trans group by flid"
  in
  let cat = Engine.Db.catalog db in
  let qg =
    build cat
      "select flid, count(*) as c from Trans group by flid order by c desc \
       limit 3"
  in
  match Astmatch.Rewrite.best ~cat qg [ mv ] with
  | None -> Alcotest.fail "expected rewrite"
  | Some (g', _) ->
      let pres = G.presentation g' in
      Alcotest.(check int) "order keys kept" 1 (List.length pres.G.order_by);
      Alcotest.(check (option int)) "limit kept" (Some 3) pres.G.limit;
      let direct = Engine.Exec.run db qg in
      let via = Engine.Exec.run db g' in
      Alcotest.(check int) "limited rows" 3 (R.cardinality via);
      check_rows "ordered results equal" direct via

let test_estimate_cost_counts_scans () =
  let db = Lazy.force star_db in
  let cat = Engine.Db.catalog db in
  let trans_rows =
    float_of_int (Option.get (Catalog.row_count cat "Trans"))
  in
  let g1 = build cat "select tid from Trans" in
  Alcotest.(check bool) "single scan" true
    (Astmatch.Cost.graph_cost cat g1 = trans_rows);
  let g2 =
    build cat "select t1.tid as a from Trans as t1, Trans as t2 where t1.tid = t2.tid"
  in
  Alcotest.(check bool) "self-join scans twice" true
    (Astmatch.Cost.graph_cost cat g2 = 2. *. trans_rows)

let test_best_picks_cheapest () =
  let db = Lazy.force star_db in
  (* coarse MV is much smaller than the fine one; both can answer *)
  let db, mv_fine =
    with_mv db "fine"
      "select flid, faid, year(date) as y, count(*) as c from Trans group by \
       flid, faid, year(date)"
  in
  let db, mv_coarse =
    with_mv db "coarse" "select flid, count(*) as c from Trans group by flid"
  in
  let cat = Engine.Db.catalog db in
  let qg = build cat "select flid, count(*) as c from Trans group by flid" in
  match Astmatch.Rewrite.best ~cat qg [ mv_fine; mv_coarse ] with
  | None -> Alcotest.fail "expected rewrite"
  | Some (g', steps) ->
      Alcotest.(check (list string)) "coarse chosen" [ "coarse" ]
        (List.map (fun (s : Astmatch.Rewrite.step) -> s.used_mv) steps);
      let direct = Engine.Exec.run db qg in
      Alcotest.(check bool) "equal" true
        (R.bag_equal_approx direct (Engine.Exec.run db g'))

let test_best_declines_non_improving () =
  let db = Lazy.force star_db in
  (* an MV as big as the base table buys nothing *)
  let db, mv = with_mv db "copy" "select tid, qty from Trans" in
  let cat = Engine.Db.catalog db in
  let qg = build cat "select tid, qty from Trans" in
  Alcotest.(check bool) "no step" true
    (Astmatch.Rewrite.best ~cat qg [ mv ] = None)

let test_multiple_asts_iterative () =
  let db = Lazy.force star_db in
  (* two different subqueries of one query, answerable by two MVs *)
  let db, mv1 =
    with_mv db "mv_year" "select year(date) as y, count(*) as c from Trans group by year(date)"
  in
  let db, mv2 =
    with_mv db "mv_loc" "select flid, count(*) as c from Trans group by flid"
  in
  let cat = Engine.Db.catalog db in
  let qg =
    build cat
      "select t1.y as y, t1.c as yc, t2.c as lc from (select year(date) as \
       y, count(*) as c from Trans group by year(date)) as t1, (select flid, \
       count(*) as c from Trans group by flid) as t2 where t1.c > t2.c"
  in
  match Astmatch.Rewrite.best ~cat qg [ mv1; mv2 ] with
  | None -> Alcotest.fail "expected rewrite"
  | Some (g', steps) ->
      Alcotest.(check int) "both MVs used" 2 (List.length steps);
      let direct = Engine.Exec.run db qg in
      Alcotest.(check bool) "equal" true
        (R.bag_equal_approx direct (Engine.Exec.run db g'))

let test_rewrites_inner_block_only () =
  let db = Lazy.force star_db in
  let db, mv =
    with_mv db "mv_inner"
      "select flid, year(date) as y, count(*) as c from Trans group by flid, \
       year(date)"
  in
  let cat = Engine.Db.catalog db in
  (* the outer aggregate itself does not match, but the inner block does *)
  let qg =
    build cat
      "select m, count(*) as n from (select flid, year(date) as y, count(*) \
       as c from Trans group by flid, year(date)) as t, (select max(qty) as \
       m from Trans) as u group by m"
  in
  match Astmatch.Rewrite.best ~cat qg [ mv ] with
  | None -> Alcotest.fail "expected inner rewrite"
  | Some (g', _) ->
      let direct = Engine.Exec.run db qg in
      Alcotest.(check bool) "equal" true
        (R.bag_equal_approx direct (Engine.Exec.run db g'))

let test_exact_replacement_shape () =
  let db = Lazy.force star_db in
  let db, mv =
    with_mv db "mv_exact" "select flid, count(*) as cnt from Trans group by flid"
  in
  let cat = Engine.Db.catalog db in
  let qg = build cat "select flid, count(*) as cnt from Trans group by flid" in
  match Astmatch.Rewrite.best ~cat qg [ mv ] with
  | None -> Alcotest.fail "expected rewrite"
  | Some (g', steps) ->
      Alcotest.(check bool) "exact step" true
        (List.for_all (fun (s : Astmatch.Rewrite.step) -> s.exact) steps);
      (* rewritten graph scans only the MV *)
      let leaves = G.base_leaves g' (G.root g') in
      Alcotest.(check int) "single leaf" 1 (List.length leaves);
      let sql = Qgm.Unparse.to_sql g' in
      Alcotest.(check bool) "scans the MV" true
        (let rec has i =
           i + 8 <= String.length sql
           && (String.sub sql i 8 = "mv_exact" || has (i + 1))
         in
         has 0)

let suite =
  [
    Alcotest.test_case "presentation preserved" `Quick
      test_apply_preserves_presentation;
    Alcotest.test_case "cost counts scans" `Quick test_estimate_cost_counts_scans;
    Alcotest.test_case "cheapest MV wins" `Quick test_best_picks_cheapest;
    Alcotest.test_case "non-improving declined" `Quick
      test_best_declines_non_improving;
    Alcotest.test_case "iterative multi-AST" `Quick test_multiple_asts_iterative;
    Alcotest.test_case "inner block rewrite" `Quick test_rewrites_inner_block_only;
    Alcotest.test_case "exact replacement" `Quick test_exact_replacement_shape;
  ]
