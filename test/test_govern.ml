(* Resource governance and self-healing maintenance: cooperative budgets
   (wall-clock deadline, match/candidate/row caps) degrade planning to the
   best-so-far plan and rewritten execution to the base plan — resource
   pressure can cost performance, never correctness or an escaped
   exception — degraded decisions are never cached, and summary tables
   left stale by DML are auto-refreshed at statement boundaries with
   exponential backoff and quarantine after repeated refresh failures. *)

module Sess = Mvstore.Session
module Store = Mvstore.Store
module Maint = Mvstore.Maint
module R = Data.Relation
module P = Plancache
module F = Guard.Fault
module GE = Guard.Error
module B = Govern.Budget

let script sn sql = ignore (Sess.exec_sql sn sql)
let parse = Sqlsyn.Parser.parse_query
let run ?limits sn sql = Sess.run_query ?limits sn (parse sql)

let with_clean_faults f =
  F.disarm_all ();
  Fun.protect ~finally:F.disarm_all f

let counter_value name = Obs.Metrics.counter_value (Obs.Metrics.counter name)

let check_equal what sn plain q =
  let via, _ = run sn q in
  let direct, _ = run plain q in
  Alcotest.(check bool)
    (Printf.sprintf "%s: equals rewrite-off" what)
    true
    (R.bag_equal_approx via direct)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ---------------- budget unit semantics ---------------- *)

let test_budget_unit () =
  Alcotest.(check bool) "unlimited is unlimited" true
    (B.is_unlimited B.unlimited);
  Alcotest.(check string) "unlimited describes" "unlimited"
    (B.describe B.unlimited);
  let l = B.limits ~deadline_ms:10. ~matches:2 () in
  Alcotest.(check bool) "limits not unlimited" false (B.is_unlimited l);
  Alcotest.(check string) "describe" "deadline=10ms matches=2" (B.describe l);
  (* the None path is free at any volume *)
  B.check_deadline None;
  B.tick_match None;
  B.tick_candidate None;
  B.tick_rows None 1_000_000;
  (* match cap: the first tick past the limit records the reason, raises,
     and keeps raising on every later tick *)
  let b = B.start (B.limits ~matches:2 ()) in
  Alcotest.(check bool) "fresh budget" true (B.exhausted b = None);
  B.tick_match (Some b);
  B.tick_match (Some b);
  (match B.tick_match (Some b) with
  | exception B.Budget_exhausted B.Match_budget -> ()
  | () -> Alcotest.fail "third match tick must exhaust"
  | exception e -> raise e);
  Alcotest.(check bool) "reason recorded" true
    (B.exhausted b = Some B.Match_budget);
  (match B.tick_match (Some b) with
  | exception B.Budget_exhausted B.Match_budget -> ()
  | _ -> Alcotest.fail "exhausted budget must keep raising");
  Alcotest.(check string) "reason name" "match-budget"
    (B.reason_name B.Match_budget);
  (* row cap counts units, not calls *)
  let b = B.start (B.limits ~rows:10 ()) in
  B.tick_rows (Some b) 10;
  (match B.tick_rows (Some b) 1 with
  | exception B.Budget_exhausted B.Row_budget -> ()
  | _ -> Alcotest.fail "row tick past the cap must exhaust");
  (* a deadline in the past trips on the next check *)
  let b = B.start (B.limits ~deadline_ms:0.001 ()) in
  Unix.sleepf 0.005;
  (match B.check_deadline (Some b) with
  | exception B.Budget_exhausted B.Deadline -> ()
  | _ -> Alcotest.fail "expired deadline must exhaust");
  Alcotest.(check bool) "deadline recorded" true
    (B.exhausted b = Some B.Deadline)

let test_env_knobs () =
  let saved_d = Sys.getenv_opt "ASTQL_DEADLINE_MS" in
  let saved_m = Sys.getenv_opt "ASTQL_MATCH_BUDGET" in
  let restore () =
    Unix.putenv "ASTQL_DEADLINE_MS" (Option.value saved_d ~default:"");
    Unix.putenv "ASTQL_MATCH_BUDGET" (Option.value saved_m ~default:"")
  in
  Fun.protect ~finally:restore @@ fun () ->
  Unix.putenv "ASTQL_DEADLINE_MS" "7.5";
  Unix.putenv "ASTQL_MATCH_BUDGET" "123";
  let l = B.default_limits () in
  Alcotest.(check bool) "deadline from env" true
    (l.B.bl_deadline_ms = Some 7.5);
  Alcotest.(check bool) "match budget from env" true
    (l.B.bl_matches = Some 123);
  Unix.putenv "ASTQL_DEADLINE_MS" "";
  Unix.putenv "ASTQL_MATCH_BUDGET" "";
  Alcotest.(check bool) "empty env is unlimited" true
    (B.is_unlimited (B.default_limits ()))

(* ---------------- deadline degradation at scale ---------------- *)

(* A pair of sessions over the same data; [sn] carries [n] competing
   summary tables so that routing has real work to truncate. *)
let many_mv_pair n =
  let sn = Sess.create () in
  let plain = Sess.create ~rewrite:false () in
  let both sql =
    script sn sql;
    script plain sql
  in
  both
    "CREATE TABLE t (g INT NOT NULL, h INT NOT NULL, v INT NOT NULL); \
     INSERT INTO t VALUES (1, 1, 10), (1, 2, 20), (2, 1, 5), (2, 2, 7), \
     (3, 1, 8), (3, 2, 9);";
  for i = 0 to n - 1 do
    script sn
      (Printf.sprintf
         "CREATE SUMMARY TABLE m%d AS SELECT g, h, SUM(v) AS s, COUNT(*) AS \
          c FROM t GROUP BY g, h;"
         i)
  done;
  (sn, plain)

let mix =
  [
    "SELECT g, SUM(v) AS s FROM t GROUP BY g";
    "SELECT g, h, SUM(v) AS s FROM t GROUP BY g, h";
    "SELECT h, COUNT(*) AS c FROM t GROUP BY h";
    "SELECT g, SUM(v) AS s FROM t GROUP BY g HAVING SUM(v) > 10";
    "SELECT DISTINCT g FROM t";
    "SELECT g, v FROM t";
  ]

let test_deadline_degrades_never_wrong () =
  with_clean_faults @@ fun () ->
  let sn, plain = many_mv_pair 64 in
  (* every match-function call from the 2nd on stalls 2 ms: a 1 ms deadline
     is guaranteed to trip mid-planning on every rewritable query *)
  F.set_delay_ms 2.0;
  F.arm F.Delay ~after:2;
  let limits = B.limits ~deadline_ms:1.0 () in
  let c0 = counter_value "govern.budget_exhausted" in
  List.iter
    (fun q ->
      let via, _ = run ~limits sn q in
      let direct, _ = run plain q in
      Alcotest.(check bool)
        (Printf.sprintf "under deadline: %s" q)
        true
        (R.bag_equal_approx via direct))
    mix;
  Alcotest.(check bool) "budget exhaustion counted" true
    (counter_value "govern.budget_exhausted" > c0);
  Alcotest.(check bool) "degraded plans counted" true
    ((Sess.stats sn).P.Stats.degraded >= 1);
  F.disarm_all ();
  (* back under the unlimited session default the same queries rewrite *)
  let _, steps = run sn "SELECT g, h, SUM(v) AS s FROM t GROUP BY g, h" in
  Alcotest.(check bool) "rewrites without the deadline" true (steps <> [])

let test_degraded_plan_not_cached () =
  with_clean_faults @@ fun () ->
  let sn, plain = many_mv_pair 2 in
  let q = "SELECT g, h, SUM(v) AS s FROM t GROUP BY g, h" in
  let tight = B.limits ~matches:1 () in
  let via, steps = run ~limits:tight sn q in
  Alcotest.(check bool) "truncated to the base plan" true (steps = []);
  let direct, _ = run plain q in
  Alcotest.(check bool) "truncated result correct" true
    (R.bag_equal_approx via direct);
  Alcotest.(check bool) "degraded counted" true
    ((Sess.stats sn).P.Stats.degraded >= 1);
  Alcotest.(check int) "best-so-far decision not cached" 0
    (P.Planner.cache_length (Sess.planner sn));
  (* warm re-plan under the adequate (unlimited) default re-attempts and
     finds the rewrite the truncated pass missed *)
  let _, steps = run sn q in
  Alcotest.(check bool) "adequate budget finds the rewrite" true (steps <> []);
  Alcotest.(check bool) "and caches it" true
    (P.Planner.cache_length (Sess.planner sn) >= 1)

let test_exec_row_budget_falls_back () =
  with_clean_faults @@ fun () ->
  let sn, plain = many_mv_pair 1 in
  let q = "SELECT g, h, SUM(v) AS s FROM t GROUP BY g, h" in
  (* sanity: rewrites when ungoverned *)
  let _, steps = run sn q in
  Alcotest.(check bool) "rewrites when ungoverned" true (steps <> []);
  (* the rewritten plan reads 6 summary rows: a 2-row budget trips at an
     executor operator boundary and the base plan is re-run unbudgeted *)
  let d0 = counter_value "govern.exec_degraded" in
  let fb0 = (Sess.stats sn).P.Stats.fallbacks in
  let via, steps = run ~limits:(B.limits ~rows:2 ()) sn q in
  Alcotest.(check bool) "served by the base plan" true (steps = []);
  let direct, _ = run plain q in
  Alcotest.(check bool) "result correct" true (R.bag_equal_approx via direct);
  Alcotest.(check bool) "exec degradation counted" true
    (counter_value "govern.exec_degraded" > d0);
  Alcotest.(check bool) "fallback counted" true
    ((Sess.stats sn).P.Stats.fallbacks > fb0);
  (* the plan itself was fine: nothing may have been quarantined *)
  Alcotest.(check int) "no quarantine for a budget fallback" 0
    (P.Planner.quarantine_length (Sess.planner sn));
  (* and with the budget lifted the rewrite serves again *)
  let _, steps = run sn q in
  Alcotest.(check bool) "rewrite back without the cap" true (steps <> [])

let test_explain_reports_degraded () =
  with_clean_faults @@ fun () ->
  let sn, _ = many_mv_pair 2 in
  let q = parse "SELECT g, h, SUM(v) AS s FROM t GROUP BY g, h" in
  Sess.set_limits sn (B.limits ~matches:1 ());
  let plan = Sess.explain sn q in
  Alcotest.(check bool) "EXPLAIN mentions degraded" true
    (contains plan "degraded: match-budget");
  Alcotest.(check bool) "EXPLAIN says not cached" true
    (contains plan "not cached");
  Sess.set_limits sn B.unlimited;
  let plan = Sess.explain sn q in
  Alcotest.(check bool) "no degraded line when ungoverned" false
    (contains plan "degraded:")

(* ---------------- self-healing maintenance ---------------- *)

(* A HAVING summary is not incrementally maintainable: INSERT leaves it
   stale, which is what the maintenance queue exists to heal. *)
let maint_pair () =
  let sn = Sess.create ~auto_maint:true () in
  let plain = Sess.create ~rewrite:false () in
  let both sql =
    script sn sql;
    script plain sql
  in
  both
    "CREATE TABLE t (g INT NOT NULL, v INT NOT NULL); \
     INSERT INTO t VALUES (1, 10), (1, 20), (2, 5), (3, 8);";
  script sn
    "CREATE SUMMARY TABLE m AS SELECT g, SUM(v) AS s FROM t GROUP BY g \
     HAVING SUM(v) > 5;";
  (sn, plain, both)

let maint_q = "SELECT g, SUM(v) AS s FROM t GROUP BY g HAVING SUM(v) > 5"

let test_auto_refresh_heals_stale () =
  with_clean_faults @@ fun () ->
  let sn, plain, both = maint_pair () in
  let _, steps = run sn maint_q in
  Alcotest.(check bool) "rewrites while fresh" true (steps <> []);
  let r0 = counter_value "govern.maint.auto_refreshes" in
  both "INSERT INTO t VALUES (2, 100);";
  Alcotest.(check bool) "stale after insert" false
    (Option.get (Store.find (Sess.store sn) "m")).Store.e_fresh;
  Alcotest.(check bool) "enqueued for maintenance" true
    (Maint.is_queued (Sess.maint sn) "m");
  (* the very next statement boundary heals it, and the healed summary
     serves the rewrite with the correct (post-insert) contents *)
  let via, steps = run sn maint_q in
  Alcotest.(check bool) "auto-refreshed at the next boundary" true
    (steps <> []);
  let direct, _ = run plain maint_q in
  Alcotest.(check bool) "healed result correct" true
    (R.bag_equal_approx via direct);
  Alcotest.(check bool) "fresh again" true
    (Option.get (Store.find (Sess.store sn) "m")).Store.e_fresh;
  Alcotest.(check bool) "dequeued" false (Maint.is_queued (Sess.maint sn) "m");
  Alcotest.(check int) "success counted" 1 (Maint.refreshed (Sess.maint sn));
  Alcotest.(check bool) "auto-refresh metric ticked" true
    (counter_value "govern.maint.auto_refreshes" > r0)

let test_auto_maint_is_opt_in () =
  with_clean_faults @@ fun () ->
  let sn = Sess.create () in
  script sn
    "CREATE TABLE t (g INT NOT NULL, v INT NOT NULL); \
     INSERT INTO t VALUES (1, 10), (2, 5); \
     CREATE SUMMARY TABLE m AS SELECT g, SUM(v) AS s FROM t GROUP BY g \
     HAVING SUM(v) > 5; \
     INSERT INTO t VALUES (2, 100);";
  (* stale tables are still observed and enqueued... *)
  Alcotest.(check bool) "enqueued" true (Maint.is_queued (Sess.maint sn) "m");
  (* ...but with auto_maint off nothing drains: PR 2/3 semantics intact *)
  let _, steps = run sn maint_q in
  Alcotest.(check bool) "stale summary stays unused" true (steps = []);
  Alcotest.(check bool) "still stale" false
    (Option.get (Store.find (Sess.store sn) "m")).Store.e_fresh;
  (* the queue surfaces in EXPLAIN *)
  let plan = Sess.explain sn (parse maint_q) in
  Alcotest.(check bool) "EXPLAIN shows the queue" true
    (contains plan "maintenance: queued(1)")

let test_refresh_backoff_and_quarantine () =
  with_clean_faults @@ fun () ->
  let sn, plain, both = maint_pair () in
  both "INSERT INTO t VALUES (2, 100);";
  let mq = Sess.maint sn in
  let f0 = counter_value "govern.maint.refresh_failures" in
  (* attempt 1: the injected refresh fault fails it *)
  F.arm F.Refresh ~after:1;
  let via, steps = run sn maint_q in
  Alcotest.(check bool) "refresh fault consumed" false (F.armed F.Refresh);
  Alcotest.(check bool) "degraded to the base plan" true (steps = []);
  let direct, _ = run plain maint_q in
  Alcotest.(check bool) "result correct despite failure" true
    (R.bag_equal_approx via direct);
  Alcotest.(check int) "one failed attempt" 1 (Maint.failures mq);
  Alcotest.(check bool) "failure metric ticked" true
    (counter_value "govern.maint.refresh_failures" > f0);
  Alcotest.(check bool) "still queued (will retry)" true
    (Maint.is_queued mq "m");
  (* exponential backoff: the immediately following boundary must NOT
     retry (the armed fault would have been consumed) *)
  F.arm F.Refresh ~after:1;
  ignore (run sn maint_q);
  Alcotest.(check bool) "backoff: no retry one boundary later" true
    (F.armed F.Refresh);
  Alcotest.(check int) "no new attempt during backoff" 1 (Maint.failures mq);
  (* attempt 2 fires at the backed-off boundary (base * 2^0 = 2 ticks) *)
  ignore (run sn maint_q);
  Alcotest.(check bool) "retry at the backed-off tick" false
    (F.armed F.Refresh);
  Alcotest.(check int) "second failed attempt" 2 (Maint.failures mq);
  (* attempt 3 (base * 2^1 = 4 ticks out) exhausts max_retries = 3 *)
  let q0 = counter_value "govern.maint.quarantined" in
  F.arm F.Refresh ~after:1;
  for _ = 1 to 4 do
    ignore (run sn maint_q)
  done;
  Alcotest.(check int) "third failed attempt" 3 (Maint.failures mq);
  Alcotest.(check bool) "quarantined after max retries" true
    (Maint.is_quarantined mq "m");
  Alcotest.(check bool) "off the retry queue" false (Maint.is_queued mq "m");
  Alcotest.(check bool) "quarantine metric ticked" true
    (counter_value "govern.maint.quarantined" > q0);
  (match Maint.quarantined mq with
  | [ held ] ->
      Alcotest.(check bool) "hold records the classified refresh error" true
        (held.Maint.mq_error.GE.err_stage = GE.Refresh
        && held.Maint.mq_error.GE.err_kind = GE.Injected)
  | held ->
      Alcotest.failf "expected one quarantined table, got %d"
        (List.length held));
  (* quarantined: no further attempts, however many boundaries pass *)
  F.arm F.Refresh ~after:1;
  for _ = 1 to 3 do
    ignore (run sn maint_q)
  done;
  Alcotest.(check bool) "no attempts while quarantined" true
    (F.armed F.Refresh);
  F.disarm_all ();
  check_equal "correct on the base plan throughout" sn plain maint_q;
  (* \health names the hold *)
  let h = Sess.health sn in
  Alcotest.(check bool) "health reports the quarantined table" true
    (contains h "quarantined m:");
  (* a manual REFRESH voids the hold and heals the table for good *)
  script sn "REFRESH SUMMARY TABLE m;";
  Alcotest.(check bool) "hold cleared by manual refresh" false
    (Maint.is_quarantined mq "m");
  let _, steps = run sn maint_q in
  Alcotest.(check bool) "rewrites again after manual refresh" true
    (steps <> []);
  check_equal "healed result correct" sn plain maint_q

let test_maint_budget_defers_without_penalty () =
  with_clean_faults @@ fun () ->
  let sn, plain, both = maint_pair () in
  both "INSERT INTO t VALUES (2, 100);";
  let mq = Sess.maint sn in
  (* a session budget tight enough that the refresh recomputation cannot
     finish: the drain defers the task — no failure, no backoff penalty *)
  let d0 = counter_value "govern.maint.deferred" in
  Sess.set_limits sn (B.limits ~rows:1 ());
  ignore (run sn maint_q);
  Alcotest.(check bool) "deferred, still queued" true (Maint.is_queued mq "m");
  Alcotest.(check int) "not a failure" 0 (Maint.failures mq);
  Alcotest.(check bool) "deferral counted" true
    (counter_value "govern.maint.deferred" > d0);
  (* budget restored: the next boundary heals it *)
  Sess.set_limits sn B.unlimited;
  let via, steps = run sn maint_q in
  Alcotest.(check bool) "healed once the budget allows" true (steps <> []);
  let direct, _ = run plain maint_q in
  Alcotest.(check bool) "healed result correct" true
    (R.bag_equal_approx via direct)

(* DROP while queued: the drain must forget the task, not refresh a ghost *)
let test_drop_clears_queue () =
  with_clean_faults @@ fun () ->
  let sn, _, both = maint_pair () in
  both "INSERT INTO t VALUES (2, 100);";
  Alcotest.(check bool) "queued" true (Maint.is_queued (Sess.maint sn) "m");
  script sn "DROP SUMMARY TABLE m;";
  Alcotest.(check bool) "drop clears the queue" false
    (Maint.is_queued (Sess.maint sn) "m");
  (* and the next boundary is a clean no-op *)
  let _, steps = run sn maint_q in
  Alcotest.(check bool) "no summary, no rewrite, no crash" true (steps = [])

(* ---------------- fatal errors stay fatal ---------------- *)

let test_sandbox_fatal_not_swallowed () =
  (* asynchronous resource exhaustion must not be classified into a routine
     fallback: Sandbox.protect re-raises it as a typed Guard.Error.Fatal
     carrying the stage/table context *)
  (match
     Guard.Sandbox.protect ~stage:GE.Match ~mv:"m" (fun () ->
         raise Stack_overflow)
   with
  | exception GE.Fatal e ->
      Alcotest.(check bool) "stack overflow surfaces as Fatal" true
        (e.GE.err_stage = GE.Match
        && e.GE.err_mv = Some "m"
        && (match e.GE.err_kind with GE.Resource _ -> true | _ -> false))
  | _ -> Alcotest.fail "Stack_overflow must not be contained");
  (match
     Guard.Sandbox.protect ~stage:GE.Execute (fun () -> raise Out_of_memory)
   with
  | exception GE.Fatal e ->
      Alcotest.(check bool) "OOM surfaces as Fatal" true
        (match e.GE.err_kind with GE.Resource _ -> true | _ -> false)
  | _ -> Alcotest.fail "Out_of_memory must not be contained");
  (* budget exhaustion likewise passes through for the governed catchers *)
  let b = B.start (B.limits ~matches:0 ()) in
  match
    Guard.Sandbox.protect ~stage:GE.Match (fun () -> B.tick_match (Some b))
  with
  | exception B.Budget_exhausted B.Match_budget -> ()
  | _ -> Alcotest.fail "Budget_exhausted must pass through the sandbox"

let suite =
  [
    Alcotest.test_case "budget unit semantics" `Quick test_budget_unit;
    Alcotest.test_case "environment knobs" `Quick test_env_knobs;
    Alcotest.test_case "deadline degrades, never wrong" `Quick
      test_deadline_degrades_never_wrong;
    Alcotest.test_case "degraded plan not cached" `Quick
      test_degraded_plan_not_cached;
    Alcotest.test_case "exec row budget falls back" `Quick
      test_exec_row_budget_falls_back;
    Alcotest.test_case "EXPLAIN reports degradation" `Quick
      test_explain_reports_degraded;
    Alcotest.test_case "auto-refresh heals stale summaries" `Quick
      test_auto_refresh_heals_stale;
    Alcotest.test_case "auto-maintenance is opt-in" `Quick
      test_auto_maint_is_opt_in;
    Alcotest.test_case "refresh backoff and quarantine" `Quick
      test_refresh_backoff_and_quarantine;
    Alcotest.test_case "budget defers maintenance without penalty" `Quick
      test_maint_budget_defers_without_penalty;
    Alcotest.test_case "drop clears the maintenance queue" `Quick
      test_drop_clears_queue;
    Alcotest.test_case "fatal errors stay fatal" `Quick
      test_sandbox_fatal_not_swallowed;
  ]
