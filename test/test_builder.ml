(* Semantic analysis: box shapes, name resolution, aggregate extraction,
   supergroup canonicalization, rejection of unsupported constructs. *)

module B = Qgm.Box
module G = Qgm.Graph
open Helpers

let cat () = tiny_catalog ()

let build sql = Helpers.build (cat ()) sql

let shape g =
  (* root-down chain of box kinds *)
  let rec go id =
    let b = G.box g id in
    let k =
      match b.B.body with
      | B.Base _ -> "base"
      | B.Select _ -> "select"
      | B.Group _ -> "group"
      | B.Union _ -> "union"
    in
    match B.children_ids b with
    | [ c ] -> k :: go c
    | [] -> [ k ]
    | cs -> k :: [ Printf.sprintf "join(%d)" (List.length cs) ]
  in
  go (G.root g)

let test_plain_select_shape () =
  let g = build "select k, v from fact where v > 1" in
  Alcotest.(check (list string)) "one select over base" [ "select"; "base" ]
    (shape g);
  Alcotest.(check (list string)) "validates" [] (G.validate g)

let test_aggregate_triple () =
  let g = build "select grp, sum(v) as sv from fact group by grp having count(*) > 1" in
  Alcotest.(check (list string)) "select/group/select"
    [ "select"; "group"; "select"; "base" ]
    (shape g);
  Alcotest.(check (list string)) "validates" [] (G.validate g)

let test_output_columns () =
  let g = build "select grp, sum(v) as sv, count(*) as c from fact group by grp" in
  Alcotest.(check (list string)) "outputs" [ "grp"; "sv"; "c" ]
    (Qgm.Builder.output_columns g)

let test_grouping_expr_computed_below () =
  let g = build "select grp, v + 1 as w, count(*) as c from fact group by grp, v + 1" in
  Alcotest.(check (list string)) "outputs" [ "grp"; "w"; "c" ]
    (Qgm.Builder.output_columns g);
  Alcotest.(check (list string)) "validates" [] (G.validate g)

let test_select_star () =
  let g = build "select * from dims" in
  Alcotest.(check (list string)) "star expands" [ "id"; "label"; "region" ]
    (Qgm.Builder.output_columns g)

let test_duplicate_agg_shared () =
  let g =
    build
      "select grp, sum(v) as a, sum(v) + count(*) as b from fact group by grp"
  in
  (* both uses of SUM(v) share one aggregate output in the GROUP BY box *)
  let group_boxes =
    List.filter
      (fun id -> B.is_group (G.box g id))
      (G.reachable g (G.root g))
  in
  match group_boxes with
  | [ gid ] -> (
      match (G.box g gid).B.body with
      | B.Group { grp_aggs; _ } ->
          Alcotest.(check int) "two distinct aggregates" 2 (List.length grp_aggs)
      | _ -> assert false)
  | _ -> Alcotest.fail "expected one group box"

let test_canonical_supergroups () =
  let sets_of sql =
    let g = build sql in
    let group_boxes =
      List.filter (fun id -> B.is_group (G.box g id)) (G.reachable g (G.root g))
    in
    match group_boxes with
    | [ gid ] -> (
        match (G.box g gid).B.body with
        | B.Group { grp_grouping; _ } ->
            List.map List.length (B.grouping_sets grp_grouping)
        | _ -> assert false)
    | _ -> Alcotest.fail "expected one group box"
  in
  Alcotest.(check (list int)) "rollup(a,b) -> 3 sets" [ 2; 1; 0 ]
    (sets_of "select count(*) as c from fact group by rollup(grp, v)");
  Alcotest.(check (list int)) "cube(a,b) -> 4 sets" [ 2; 1; 1; 0 ]
    (sets_of "select count(*) as c from fact group by cube(grp, v)");
  Alcotest.(check (list int)) "cross product with plain item" [ 2; 1 ]
    (sets_of
       "select count(*) as c from fact group by grp, grouping sets((v), ())");
  Alcotest.(check (list int)) "duplicate sets removed" [ 1 ]
    (sets_of
       "select count(*) as c from fact group by grouping sets((grp), (grp))")

let test_scalar_subquery () =
  let g =
    build "select k, v * (select count(*) from dims) as scaled from fact"
  in
  Alcotest.(check (list string)) "validates" [] (G.validate g);
  (* scalar quantifier present in the root select *)
  match (G.box g (G.root g)).B.body with
  | B.Select { sel_quants; _ } ->
      Alcotest.(check int) "two quantifiers" 2 (List.length sel_quants);
      Alcotest.(check bool) "one scalar" true
        (List.exists (fun q -> q.B.q_kind = B.Scalar) sel_quants)
  | _ -> Alcotest.fail "root not a select"

let test_resolution_errors () =
  let expect_sem sql =
    match build sql with
    | exception Qgm.Builder.Sem_error _ -> ()
    | _ -> Alcotest.fail ("should be rejected: " ^ sql)
  in
  expect_sem "select ghost from fact";
  expect_sem "select k from fact, dims where id = id2";
  expect_sem "select fact.v from dims";
  expect_sem "select k from ghost_table";
  expect_sem "select v from fact group by grp";              (* not grouped *)
  expect_sem "select sum(sum(v)) as x from fact";            (* nested agg *)
  expect_sem "select k from fact where sum(v) > 1";          (* agg in WHERE *)
  expect_sem "select k from fact as f1, fact as f1";         (* dup alias *)
  expect_sem
    "select k from fact where v = (select v from dims where id = k)"
    (* correlated: inner k unresolvable *)

(* An unknown column inside a subquery must be reported with the subquery's
   name, not as a bare top-level error — the context chains for nesting. *)
let test_subquery_error_context () =
  let expect_ctx sql fragment =
    match build sql with
    | exception Qgm.Builder.Sem_error m ->
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool)
          (Printf.sprintf "%S mentions %S (got %S)" sql fragment m)
          true (contains m fragment)
    | _ -> Alcotest.fail ("should be rejected: " ^ sql)
  in
  expect_ctx "select a from (select ghost as a from fact) as sub"
    "in subquery sub";
  expect_ctx "select k from fact where v = (select ghost from dims)"
    "in scalar subquery";
  (* correlated reference: the outer column is unresolvable inside *)
  expect_ctx "select k from fact where v = (select v from dims where id = k)"
    "in scalar subquery";
  (* nested: contexts chain outermost-first *)
  expect_ctx
    "select a from (select (select ghost from dims) as a from fact) as outr"
    "in subquery outr: in scalar subquery"

let test_ambiguous_column () =
  (* both tables expose no common column in tiny schema; build one *)
  match
    build "select id from dims as d1, dims as d2"
  with
  | exception Qgm.Builder.Sem_error _ -> ()
  | _ -> Alcotest.fail "ambiguous column accepted"

let test_order_by_forms () =
  let g = build "select grp, count(*) as c from fact group by grp order by c desc, 1" in
  let pres = G.presentation g in
  Alcotest.(check int) "two order keys" 2 (List.length pres.G.order_by);
  Alcotest.(check bool) "positional resolved" true
    (List.exists (fun (c, asc) -> c = "grp" && asc) pres.G.order_by)

let test_base_box_shared () =
  let g = build "select f1.k as a, f2.k as b from fact as f1, fact as f2 where f1.k = f2.k" in
  let bases =
    List.filter (fun id -> B.is_base (G.box g id)) (G.reachable g (G.root g))
  in
  Alcotest.(check int) "one shared base box for self-join" 1 (List.length bases)

let suite =
  [
    Alcotest.test_case "plain select shape" `Quick test_plain_select_shape;
    Alcotest.test_case "aggregate triple" `Quick test_aggregate_triple;
    Alcotest.test_case "output columns" `Quick test_output_columns;
    Alcotest.test_case "grouping expressions" `Quick
      test_grouping_expr_computed_below;
    Alcotest.test_case "select star" `Quick test_select_star;
    Alcotest.test_case "shared aggregates" `Quick test_duplicate_agg_shared;
    Alcotest.test_case "canonical supergroups" `Quick test_canonical_supergroups;
    Alcotest.test_case "scalar subquery" `Quick test_scalar_subquery;
    Alcotest.test_case "resolution errors" `Quick test_resolution_errors;
    Alcotest.test_case "subquery error context" `Quick
      test_subquery_error_context;
    Alcotest.test_case "ambiguous column" `Quick test_ambiguous_column;
    Alcotest.test_case "order by forms" `Quick test_order_by_forms;
    Alcotest.test_case "base box sharing" `Quick test_base_box_shared;
  ]
