(* Randomized soundness of the whole matching stack.

   Queries and summary-table definitions are drawn from a grammar of
   aggregate blocks over the star schema (grouping subsets, aggregate
   menus, filters, having). For every generated pair, if the navigator
   finds a match, the rewritten query MUST return the same bag of rows as
   the original. Unsound matches (the worst possible bug in this system)
   show up as counterexamples here.

   Two samplers: [related] biases the AST to cover the query (high match
   rate, exercises compensation construction); [independent] drives mostly
   negative decisions (exercises the conditions). *)

module R = Data.Relation
open Helpers

let star_db =
  lazy
    (Engine.Db.of_tables
       (Workload.Star_schema.catalog ())
       (Workload.Star_schema.generate
          {
            Workload.Star_schema.default_params with
            n_custs = 2;
            n_locs = 8;
            trans_per_acct_year = 12;
            years = [ 1994; 1995 ];
          }))

let dims =
  [| "flid"; "faid"; "fpgid"; "year(date)"; "month(date)"; "qty" |]

let aggs =
  [|
    "COUNT(*)"; "SUM(qty)"; "SUM(price)"; "COUNT(qty)"; "MIN(price)";
    "MAX(qty)"; "AVG(qty)"; "COUNT(DISTINCT faid)"; "SUM(qty * price)";
  |]

let filters =
  [| "year(date) > 1994"; "month(date) >= 6"; "qty > 2"; "disc > 0.1" |]

type spec = {
  sp_dims : int list;      (* indexes into dims *)
  sp_aggs : int list;      (* indexes into aggs *)
  sp_filters : int list;
  sp_having : bool;
  sp_cube : bool;          (* grouping sets over prefixes of the dims *)
}

let spec_to_sql sp =
  let dim_exprs = List.map (fun i -> dims.(i)) sp.sp_dims in
  let dim_items =
    List.mapi (fun j e -> Printf.sprintf "%s AS d%d" e j) dim_exprs
  in
  let agg_items =
    List.mapi (fun j i -> Printf.sprintf "%s AS a%d" aggs.(i) j) sp.sp_aggs
  in
  let where =
    match List.map (fun i -> filters.(i)) sp.sp_filters with
    | [] -> ""
    | fs -> " WHERE " ^ String.concat " AND " fs
  in
  let group =
    match dim_exprs with
    | [] -> ""
    | es when sp.sp_cube && List.length es >= 2 ->
        (* rollup-style prefixes as explicit grouping sets *)
        let rec prefixes = function
          | [] -> [ [] ]
          | l -> l :: prefixes (List.filteri (fun i _ -> i < List.length l - 1) l)
        in
        let sets =
          List.map
            (fun set -> "(" ^ String.concat ", " set ^ ")")
            (prefixes es)
        in
        " GROUP BY GROUPING SETS(" ^ String.concat ", " sets ^ ")"
    | es -> " GROUP BY " ^ String.concat ", " es
  in
  let having =
    if sp.sp_having && (dim_exprs <> [] || agg_items <> []) then
      " HAVING COUNT(*) > 3"
    else ""
  in
  Printf.sprintf "SELECT %s FROM Trans%s%s%s"
    (String.concat ", " (dim_items @ agg_items))
    where group having

let gen_subset arr =
  QCheck.Gen.(
    list_size (int_range 0 3) (int_bound (Array.length arr - 1))
    >|= List.sort_uniq compare)

let gen_spec =
  QCheck.Gen.(
    let* sp_dims = gen_subset dims in
    let* sp_aggs =
      list_size (int_range 1 3) (int_bound (Array.length aggs - 1))
      >|= List.sort_uniq compare
    in
    let* sp_filters = gen_subset filters in
    let* sp_having = bool in
    let* sp_cube = QCheck.Gen.frequency [ (3, QCheck.Gen.return false); (1, QCheck.Gen.return true) ] in
    return { sp_dims; sp_aggs; sp_filters; sp_having; sp_cube })

(* AST biased to cover the query: superset dims, superset aggs plus
   count-star, subset filters, no having. *)
let gen_related =
  QCheck.Gen.(
    let* q = gen_spec in
    let* extra_dims = gen_subset dims in
    let* extra_aggs = gen_subset aggs in
    let* ast_cube = bool in
    let ast =
      {
        sp_dims = List.sort_uniq compare (q.sp_dims @ extra_dims);
        sp_aggs = List.sort_uniq compare ((0 :: q.sp_aggs) @ extra_aggs);
        sp_filters = [];
        sp_having = false;
        sp_cube = ast_cube;
      }
    in
    return (q, ast))

let gen_independent =
  QCheck.Gen.(
    let* q = gen_spec in
    let* a = gen_spec in
    return (q, a))

let print_pair (q, a) =
  Printf.sprintf "query: %s\nast:   %s" (spec_to_sql q) (spec_to_sql a)

let sound (q, a) =
  let db = Lazy.force star_db in
  let query = spec_to_sql q and ast = spec_to_sql a in
  match rewrite_check db ~query ~ast with
  | _, equal -> equal
  | exception e ->
      QCheck.Test.fail_reportf "exception %s on\nquery: %s\nast: %s"
        (Printexc.to_string e) query ast

let prop_related =
  QCheck.Test.make ~name:"rewrites sound (covering ASTs)" ~count:250
    (QCheck.make ~print:print_pair gen_related)
    sound

let prop_independent =
  QCheck.Test.make ~name:"rewrites sound (independent ASTs)" ~count:250
    (QCheck.make ~print:print_pair gen_independent)
    sound

(* Expr.normalize is idempotent on every expression the generated grammar
   elaborates to — predicates and output expressions of every box.  The
   matcher compares normal forms, so a second normalize changing anything
   would mean two passes disagree on equality. *)
let graph_exprs g =
  let module B = Qgm.Box in
  let module G = Qgm.Graph in
  List.concat_map
    (fun id ->
      match (G.box g id).B.body with
      | B.Select s -> s.B.sel_preds @ List.map snd s.B.sel_outs
      | B.Base _ | B.Group _ | B.Union _ -> [])
    (G.reachable g (G.root g))

let prop_normalize_idempotent =
  let gen =
    QCheck.Gen.(gen_spec >|= spec_to_sql)
  in
  QCheck.Test.make ~name:"Expr.normalize idempotent on generated exprs"
    ~count:200
    (QCheck.make ~print:(fun sql -> sql) gen)
    (fun sql ->
      let db = Lazy.force star_db in
      let g = build (Engine.Db.catalog db) sql in
      List.for_all
        (fun e ->
          let n = Qgm.Expr.normalize e in
          Qgm.Expr.normalize n = n)
        (graph_exprs g))

(* sanity: the related sampler does produce a healthy number of matches *)
let test_match_rate () =
  let db = Lazy.force star_db in
  let rand = Random.State.make [| 7 |] in
  let matched = ref 0 and total = 100 in
  for _ = 1 to total do
    let q, a = gen_related rand in
    let rewritten, _ = rewrite_check db ~query:(spec_to_sql q) ~ast:(spec_to_sql a) in
    if rewritten then incr matched
  done;
  Alcotest.(check bool)
    (Printf.sprintf "match rate %d/100 above floor" !matched)
    true (!matched > 30)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_related;
    QCheck_alcotest.to_alcotest prop_independent;
    QCheck_alcotest.to_alcotest prop_normalize_idempotent;
    Alcotest.test_case "related sampler match rate" `Quick test_match_rate;
  ]
