(* Multi-domain stress over one shared store: sessions on N domains issue
   a mixed query/DML workload concurrently. Checks after the dust settles:

   - per-domain results are bag-equal to a single-threaded reference
     (each domain writes only its own scratch table, so its view of that
     table is deterministic whatever the interleaving);
   - no lost or torn writes: the shared log table holds exactly the rows
     every domain inserted, and because each INSERT adds a fixed even
     number of rows, any in-flight reader must always count a multiple of
     that batch — a half-applied statement would show up as a remainder;
   - metrics tick atomically: N domains x K increments = N*K, exactly;
   - the store epoch advanced once per published write. *)

module Sess = Mvstore.Session
module Shared = Mvstore.Shared
module V = Data.Value
module R = Data.Relation

let n_domains = 4
let n_iters = 20
let batch = 2 (* rows per INSERT into the shared log *)

let seed_shared () =
  let sn = Sess.create () in
  ignore
    (Sess.exec_sql sn
       "CREATE TABLE fact (grp INT NOT NULL, v INT NOT NULL); \
        CREATE SUMMARY TABLE fact_by_grp AS SELECT grp, SUM(v) AS s, \
        COUNT(*) AS c FROM fact GROUP BY grp; \
        CREATE TABLE log (dom INT NOT NULL, seq INT NOT NULL);");
  (* bulk load after the summary exists so it stays fresh via refresh *)
  let values =
    List.init 60 (fun i -> Printf.sprintf "(%d, %d)" (i mod 5) i)
    |> String.concat ", "
  in
  ignore
    (Sess.exec_sql sn
       (Printf.sprintf "INSERT INTO fact VALUES %s; REFRESH SUMMARY TABLE \
                        fact_by_grp;" values));
  Sess.share sn

let scratch_name d = Printf.sprintf "scratch_%d" d

(* The per-domain workload: returns the final contents of this domain's
   scratch table, as answered by [session]. *)
let workload session d =
  let sql fmt = Printf.ksprintf (fun s -> Sess.exec_sql session s) fmt in
  let tbl = scratch_name d in
  ignore (sql "CREATE TABLE %s (a INT NOT NULL, b INT NOT NULL);" tbl);
  for i = 1 to n_iters do
    (* private DML *)
    ignore (sql "INSERT INTO %s VALUES (%d, %d);" tbl i (i * i));
    (* shared DML: one statement, [batch] rows, all-or-nothing *)
    ignore (sql "INSERT INTO log VALUES (%d, %d), (%d, %d);" d i d (-i));
    (* shared read through the rewriter *)
    (match
       sql "SELECT grp, SUM(v) AS s FROM fact GROUP BY grp ORDER BY grp;"
     with
    | [ Sess.Table rel ] ->
        if R.cardinality rel <> 5 then failwith "fact aggregate wrong"
    | _ -> failwith "expected a table");
    (* shared read that races in-flight writers: must never observe a
       torn statement *)
    (match sql "SELECT COUNT(*) AS n FROM log;" with
    | [ Sess.Table rel ] -> (
        match R.rows rel with
        | [ [| V.Int n |] ] ->
            if n mod batch <> 0 then
              failwith
                (Printf.sprintf "torn write visible: COUNT(log) = %d" n)
        | _ -> failwith "expected one count row")
    | _ -> failwith "expected a table")
  done;
  match sql "SELECT a, b FROM %s ORDER BY a;" tbl with
  | [ Sess.Table rel ] -> rel
  | _ -> failwith "expected a table"

let test_stress () =
  let shared = seed_shared () in
  let epoch0 = Shared.epoch shared in
  let writes0 = Shared.writes shared in
  let ticks = Obs.Metrics.counter "test.concurrency_ticks" in
  let ticks0 = Obs.Metrics.counter_value ticks in
  let results =
    Array.init n_domains (fun d ->
        Domain.spawn (fun () ->
            let session = Sess.attach shared in
            let rel = workload session d in
            for _ = 1 to 1000 do
              Obs.Metrics.incr ticks
            done;
            rel))
    |> Array.map Domain.join
  in
  (* single-threaded reference: same per-domain workload, private store *)
  let reference d =
    let sn = Sess.create () in
    ignore
      (Sess.exec_sql sn
         "CREATE TABLE fact (grp INT NOT NULL, v INT NOT NULL); CREATE \
          TABLE log (dom INT NOT NULL, seq INT NOT NULL);");
    let values =
      List.init 60 (fun i -> Printf.sprintf "(%d, %d)" (i mod 5) i)
      |> String.concat ", "
    in
    ignore (Sess.exec_sql sn (Printf.sprintf "INSERT INTO fact VALUES %s;" values));
    workload sn d
  in
  Array.iteri
    (fun d rel ->
      Alcotest.(check bool)
        (Printf.sprintf "domain %d bag-equal to reference" d)
        true
        (R.bag_equal rel (reference d)))
    results;
  (* no lost writes in the shared table *)
  let check = Sess.attach shared in
  (match Sess.exec_sql check "SELECT COUNT(*) AS n FROM log;" with
  | [ Sess.Table rel ] -> (
      match R.rows rel with
      | [ [| V.Int n |] ] ->
          Alcotest.(check int) "every shared insert landed"
            (n_domains * n_iters * batch)
            n
      | _ -> Alcotest.fail "expected one count row")
  | _ -> Alcotest.fail "expected a table");
  (* per-domain shared rows intact *)
  (match
     Sess.exec_sql check
       "SELECT dom, COUNT(*) AS n FROM log GROUP BY dom ORDER BY dom;"
   with
  | [ Sess.Table rel ] ->
      Alcotest.(check int) "all domains present" n_domains (R.cardinality rel);
      List.iter
        (fun row ->
          match row with
          | [| V.Int _; V.Int n |] ->
              Alcotest.(check int) "per-domain rows" (n_iters * batch) n
          | _ -> Alcotest.fail "unexpected row shape")
        (R.rows rel)
  | _ -> Alcotest.fail "expected a table");
  (* torn-counter check: N domains x 1000 increments *)
  Alcotest.(check int) "metrics increments are atomic"
    (ticks0 + (n_domains * 1000))
    (Obs.Metrics.counter_value ticks);
  (* every write statement published exactly once, and the store epoch
     moved forward *)
  let published = Shared.writes shared - writes0 in
  Alcotest.(check int) "expected number of published writes"
    (n_domains * (1 + (n_iters * 2)))
    published;
  Alcotest.(check bool) "epoch advanced" true (Shared.epoch shared > epoch0)

let test_write_visible_at_next_statement () =
  (* every statement binds the freshest published snapshot: a write by
     session B is visible to session A's very next statement *)
  let shared = seed_shared () in
  let a = Sess.attach shared in
  let b = Sess.attach shared in
  ignore (Sess.exec_sql b "INSERT INTO log VALUES (9, 1), (9, 2);");
  match Sess.exec_sql a "SELECT COUNT(*) AS n FROM log;" with
  | [ Sess.Table rel ] -> (
      match R.rows rel with
      | [ [| V.Int 2 |] ] -> ()
      | _ -> Alcotest.fail "peer write not visible")
  | _ -> Alcotest.fail "expected a table"

let suite =
  [
    Alcotest.test_case "multi-domain stress: bag-equality, no torn state"
      `Slow test_stress;
    Alcotest.test_case "published writes visible at next statement" `Quick
      test_write_visible_at_next_statement;
  ]
