(* Static predicate prover.

   Three layers of evidence:
     - hand-built cases for the abstract domain (open/closed bounds, NULL
       semantics, discrete INT/DATE adjacency, mixed INT/FLOAT literals,
       equivalence-class transfer, partition certificates);
     - a seeded differential property test: random predicate pairs are
       judged by the prover AND evaluated on random rows; every [Proved]
       verdict must agree with the observed truth (the prover may say
       Unknown whenever it likes — it may never say Proved wrongly);
     - an end-to-end session test of [verify:Static] (certified rewrites
       skip the runtime re-execution, uncertified ones do not). *)

module P = Prove
module D = Prove.Domain
module E = Qgm.Expr
module V = Data.Value
module Sess = Mvstore.Session
module R = Data.Relation

let proved = function P.Proved -> true | P.Unknown _ -> false

let check_proved msg expected status =
  Alcotest.(check bool) msg expected (proved status)

(* ---------------- abstract domain ---------------- *)

let ge_i n = D.of_range ~ty:V.Tint (D.B (V.Int n, D.Closed)) D.Pos_inf
let gt_i n = D.of_range ~ty:V.Tint (D.B (V.Int n, D.Open)) D.Pos_inf
let le_i n = D.of_range ~ty:V.Tint D.Neg_inf (D.B (V.Int n, D.Closed))
let lt_i n = D.of_range ~ty:V.Tint D.Neg_inf (D.B (V.Int n, D.Open))

let test_domain_discrete () =
  (* x > 9 and x >= 10 are the same set of integers *)
  Alcotest.(check bool) "gt 9 <= ge 10" true (D.le (gt_i 9) (ge_i 10));
  Alcotest.(check bool) "ge 10 <= gt 9" true (D.le (ge_i 10) (gt_i 9));
  Alcotest.(check bool) "lt 10 <= le 9" true (D.le (lt_i 10) (le_i 9));
  (* without a type the open bound stays open *)
  let gt9_untyped = D.of_range (D.B (V.Int 9, D.Open)) D.Pos_inf in
  Alcotest.(check bool) "untyped gt 9 not <= ge 10" false
    (D.le gt9_untyped (ge_i 10));
  (* the typed direction is still fine: [10, inf) is inside (9, inf) *)
  Alcotest.(check bool) "ge 10 <= untyped gt 9" true
    (D.le (ge_i 10) gt9_untyped);
  (* a FLOAT literal on an INT-typed range must not be "discretized" *)
  let gt_f = D.of_range ~ty:V.Tint (D.B (V.Float 9.5, D.Open)) D.Pos_inf in
  Alcotest.(check bool) "float bound stays open" false
    (D.le gt_f (ge_i 10))

let test_domain_meet_disjoint () =
  Alcotest.(check bool) "lt 5 disjoint gt 10" true
    (D.disjoint (lt_i 5) (gt_i 10));
  Alcotest.(check bool) "lt 5 disjoint ge 5" true
    (D.disjoint (lt_i 5) (ge_i 5));
  Alcotest.(check bool) "le 5 overlaps ge 5" false
    (D.disjoint (le_i 5) (ge_i 5));
  Alcotest.(check bool) "meet empty -> is_empty" true
    (D.is_empty (D.meet (lt_i 5) (gt_i 10)));
  (* NULL is outside every range: null_only vs a range is disjoint *)
  Alcotest.(check bool) "null_only disjoint range" true
    (D.disjoint D.null_only (ge_i 0));
  Alcotest.(check bool) "null_only disjoint not_null" true
    (D.disjoint D.null_only D.not_null)

let test_domain_covers () =
  (* x <= 9 union x >= 10 covers every integer *)
  Alcotest.(check bool) "discrete adjacency covers" true
    (D.covers_all ~ty:V.Tint ~nullable:false (le_i 9) (ge_i 10));
  Alcotest.(check bool) "touching closed bound covers" true
    (D.covers_all ~ty:V.Tint ~nullable:false (le_i 10) (ge_i 10));
  Alcotest.(check bool) "strict gap does not cover" false
    (D.covers_all ~ty:V.Tint ~nullable:false (lt_i 10) (gt_i 10));
  Alcotest.(check bool) "int gap does not cover" false
    (D.covers_all ~ty:V.Tint ~nullable:false (le_i 9) (ge_i 11));
  (* a nullable pivot column leaves the NULL row uncovered *)
  Alcotest.(check bool) "nullable pivot not covered" false
    (D.covers_all ~ty:V.Tint ~nullable:true (le_i 9) (ge_i 10));
  (* dense type: open/open adjacency leaves the point out *)
  let lt_f = D.of_range D.Neg_inf (D.B (V.Float 1.0, D.Open)) in
  let gt_f = D.of_range (D.B (V.Float 1.0, D.Open)) D.Pos_inf in
  let ge_f = D.of_range (D.B (V.Float 1.0, D.Closed)) D.Pos_inf in
  Alcotest.(check bool) "float open/open gap" false
    (D.covers_all ~nullable:false lt_f gt_f);
  Alcotest.(check bool) "float open/closed covers" true
    (D.covers_all ~nullable:false lt_f ge_f)

(* ---------------- verdicts on hand-built predicates ---------------- *)

let col c = E.Col c
let ci n = E.Const (V.Int n)
let band a b = E.Binop ("AND", a, b)
let bor a b = E.Binop ("OR", a, b)
let cmp op a b = E.Binop (op, a, b)

let int_cols = [ ("price", V.Tint); ("qty", V.Tint) ]
let ty = P.key_ty ~col:(fun c -> List.assoc_opt c int_cols)

let test_subsumed_between () =
  (* the motivating case: BETWEEN 10 AND 50 inside (5, 100) *)
  let weak = band (cmp ">" (col "price") (ci 5)) (cmp "<" (col "price") (ci 100)) in
  let strong =
    band (cmp ">=" (col "price") (ci 10)) (cmp "<=" (col "price") (ci 50))
  in
  check_proved "between inside open range" true
    (P.subsumed ~ty ~weak:[ weak ] ~strong:[ strong ]);
  check_proved "not the converse" false
    (P.subsumed ~ty ~weak:[ strong ] ~strong:[ weak ]);
  (* an equality inside a range *)
  check_proved "equality inside range" true
    (P.subsumed ~ty
       ~weak:[ cmp "<" (col "price") (ci 100) ]
       ~strong:[ cmp "=" (col "price") (ci 42) ]);
  (* vacuous: unsatisfiable strong side proves anything *)
  check_proved "unsat strong is vacuous" true
    (P.subsumed ~ty
       ~weak:[ cmp "=" (col "qty") (ci 1) ]
       ~strong:
         [ cmp ">" (col "price") (ci 10); cmp "<" (col "price") (ci 5) ])

let test_unsat_disjoint () =
  check_proved "contradictory bounds" true
    (P.unsat ~ty [ cmp ">" (col "price") (ci 10); cmp "<" (col "price") (ci 5) ]);
  check_proved "int gap closes under discreteness" true
    (P.unsat ~ty [ cmp ">" (col "price") (ci 4); cmp "<" (col "price") (ci 5) ]);
  check_proved "satisfiable stays unknown" false
    (P.unsat ~ty [ cmp ">" (col "price") (ci 4) ]);
  check_proved "IS NULL vs range" true
    (P.disjoint ~ty
       [ E.Is_null (col "price", true) ]
       [ cmp ">" (col "price") (ci 0) ]);
  check_proved "split ranges disjoint" true
    (P.disjoint ~ty
       [ cmp "<" (col "price") (ci 10) ]
       [ cmp ">=" (col "price") (ci 10) ]);
  check_proved "overlap not disjoint" false
    (P.disjoint ~ty
       [ cmp "<" (col "price") (ci 10) ]
       [ cmp ">" (col "price") (ci 0) ])

let test_or_hull_soundness () =
  (* the OR of two ranges collapses to a hull: usable as a HAVE, never as
     a NEED. weak = (p<2 OR p>8) must NOT be proved from strong = p>=0,
     even though the hull of weak contains [0, inf). *)
  let weak = bor (cmp "<" (col "price") (ci 2)) (cmp ">" (col "price") (ci 8)) in
  check_proved "inexact need is refused" false
    (P.subsumed ~ty ~weak:[ weak ] ~strong:[ cmp ">=" (col "price") (ci 0) ]);
  (* ... but the same OR is fine as the strong side *)
  check_proved "hull on the have side" true
    (P.subsumed ~ty ~weak:[ cmp ">=" (col "price") (ci 0) ]
       ~strong:[ bor (cmp "=" (col "price") (ci 2)) (cmp "=" (col "price") (ci 8)) ]);
  (* enum ORs stay exact in both roles *)
  check_proved "enum or as need" true
    (P.subsumed ~ty
       ~weak:[ bor (cmp "=" (col "price") (ci 2)) (cmp "=" (col "price") (ci 8)) ]
       ~strong:[ cmp "=" (col "price") (ci 8) ])

let test_equiv_transfer () =
  (* a = b together with b > 10 entails a > 5 once both sides are
     canonicalized through the equivalence classes, exactly as the matcher
     does before asking the prover *)
  let a = col "a" and b = col "b" in
  let preds = [ E.Binop ("=", a, b); cmp ">" b (ci 10) ] in
  let eq = Astmatch.Equiv.of_preds preds in
  let canon e = Astmatch.Equiv.canon eq e in
  check_proved "entailment across the class" true
    (P.subsumed ~ty:P.no_ty
       ~weak:[ canon (cmp ">" a (ci 5)) ]
       ~strong:(List.map canon preds));
  (* without canonicalization the columns do not line up *)
  check_proved "no transfer without canon" false
    (P.subsumed ~ty:P.no_ty ~weak:[ cmp ">" a (ci 5) ] ~strong:preds)

(* ---------------- differential property test ---------------- *)

let cols = [ ("x", V.Tint); ("y", V.Tfloat); ("s", V.Tstr); ("d", V.Tdate) ]
let diff_ty = P.key_ty ~col:(fun c -> List.assoc_opt c cols)

let rand_const st ty =
  match ty with
  | V.Tint -> V.Int (Random.State.int st 6)
  | V.Tfloat -> V.Float (float_of_int (Random.State.int st 8) /. 2.)
  | V.Tstr -> V.Str (List.nth [ "a"; "b"; "c" ] (Random.State.int st 3))
  | V.Tdate ->
      (* cluster around a month boundary so rollover adjacency is hit *)
      V.date 2020
        (1 + Random.State.int st 2)
        (List.nth [ 1; 2; 28; 30; 31 ] (Random.State.int st 5))
  | V.Tbool -> V.Bool (Random.State.bool st)

let rand_atom st =
  let name, ty = List.nth cols (Random.State.int st (List.length cols)) in
  let c = col name in
  match Random.State.int st 9 with
  | 0 -> E.Is_null (c, true)
  | 1 -> E.Is_null (c, false)
  | n ->
      let op = List.nth [ "<"; "<="; ">"; ">="; "="; "<>"; "=" ] (n - 2) in
      (* sometimes a float literal lands on the int column (and vice
         versa) — the prover must stay sound under mixed numerics *)
      let lit_ty =
        if ty = V.Tint && Random.State.int st 5 = 0 then V.Tfloat
        else if ty = V.Tfloat && Random.State.int st 5 = 0 then V.Tint
        else ty
      in
      E.Binop (op, c, E.Const (rand_const st lit_ty))

let rand_preds st =
  List.init
    (1 + Random.State.int st 3)
    (fun _ ->
      if Random.State.int st 4 = 0 then bor (rand_atom st) (rand_atom st)
      else rand_atom st)

let rand_row st =
  List.map
    (fun (n, ty) ->
      (n, if Random.State.int st 5 = 0 then V.Null else rand_const st ty))
    cols

let sat row preds =
  List.for_all
    (fun p -> Engine.Eval.is_satisfied (fun c -> List.assoc c row) p)
    preds

let test_differential () =
  let st = Random.State.make [| 0xA57; 0x9607 |] in
  let fail_at trial what a b =
    Alcotest.failf "trial %d: unsound %s verdict on %s | %s" trial what
      (String.concat " AND " (List.map (E.to_string Fun.id) a))
      (String.concat " AND " (List.map (E.to_string Fun.id) b))
  in
  for trial = 1 to 500 do
    let a = rand_preds st and b = rand_preds st in
    let rows = List.init 80 (fun _ -> rand_row st) in
    (match P.subsumed ~ty:diff_ty ~weak:a ~strong:b with
    | P.Proved ->
        List.iter
          (fun r ->
            if sat r b && not (sat r a) then fail_at trial "subsumed" a b)
          rows
    | P.Unknown _ -> ());
    (match P.disjoint ~ty:diff_ty a b with
    | P.Proved ->
        List.iter
          (fun r -> if sat r a && sat r b then fail_at trial "disjoint" a b)
          rows
    | P.Unknown _ -> ());
    match P.unsat ~ty:diff_ty a with
    | P.Proved ->
        List.iter (fun r -> if sat r a then fail_at trial "unsat" a []) rows
    | P.Unknown _ -> ()
  done

(* ---------------- partition certificates ---------------- *)

let test_partition () =
  let cat = Helpers.tiny_catalog () in
  let g sql = Helpers.build cat sql in
  (* k is INT NOT NULL: a strict/non-strict split partitions the domain *)
  let cert =
    P.partition ~cat
      (g "SELECT k, grp FROM fact WHERE k < 10")
      (g "SELECT k, grp FROM fact WHERE k >= 10")
  in
  check_proved "clean split" true cert.P.pc_status;
  Alcotest.(check (option string)) "pivot column" (Some "fact.k")
    cert.P.pc_column;
  (* discrete adjacency: k <= 9 / k >= 10 *)
  check_proved "discrete adjacency split" true
    (P.partition ~cat
       (g "SELECT k FROM fact WHERE k <= 9")
       (g "SELECT k FROM fact WHERE k >= 10"))
      .P.pc_status;
  (* a gap is disjoint but not covering *)
  check_proved "gap is not a partition" false
    (P.partition ~cat
       (g "SELECT k FROM fact WHERE k < 9")
       (g "SELECT k FROM fact WHERE k > 9"))
      .P.pc_status;
  (* overlap is not even disjoint *)
  check_proved "overlap is not a partition" false
    (P.partition ~cat
       (g "SELECT k FROM fact WHERE k < 10")
       (g "SELECT k FROM fact WHERE k >= 5"))
      .P.pc_status;
  (* v is nullable: the NULL row falls through both sides *)
  check_proved "nullable pivot is not a partition" false
    (P.partition ~cat
       (g "SELECT k, v FROM fact WHERE v < 10")
       (g "SELECT k, v FROM fact WHERE v >= 10"))
      .P.pc_status;
  (* different footprints never partition *)
  check_proved "footprint mismatch" false
    (P.partition ~cat
       (g "SELECT k FROM fact WHERE k < 10")
       (g "SELECT id FROM dims WHERE id >= 10"))
      .P.pc_status

(* ---------------- end-to-end: verify:Static ---------------- *)

let script session sql = ignore (Sess.exec_sql session sql)

let setup_grouped () =
  let sn = Sess.create ~verify:Sess.Static () in
  script sn
    "CREATE TABLE t (g INT NOT NULL, v INT NOT NULL); \
     INSERT INTO t VALUES (1, 10), (1, 20), (2, 5); \
     CREATE SUMMARY TABLE m AS SELECT g, SUM(v) AS s, COUNT(*) AS c FROM t \
     GROUP BY g;";
  sn

let test_static_verify_skips () =
  P.Level.with_level P.Level.Rewrite (fun () ->
      let sn = setup_grouped () in
      let q = Sqlsyn.Parser.parse_query "SELECT g, SUM(v) AS s FROM t GROUP BY g" in
      let rel, steps = Sess.run_query sn q in
      Alcotest.(check bool) "rewritten" true (steps <> []);
      check_proved "plan certified" true (Astmatch.Rewrite.steps_proof steps);
      let st = Sess.stats sn in
      Alcotest.(check int) "no runtime verification" 0
        st.Plancache.Stats.verify_runs;
      Alcotest.(check int) "one static skip" 1
        st.Plancache.Stats.verify_static_skips;
      (* the served answer is still right *)
      Sess.set_rewrite sn false;
      let direct, _ = Sess.run_query sn q in
      Alcotest.(check bool) "bag-equal" true (R.bag_equal_approx rel direct))

let test_static_verify_falls_back () =
  (* prover off: no certificate can exist, so Static behaves like Always *)
  P.Level.with_level P.Level.Off (fun () ->
      let sn = setup_grouped () in
      let q = Sqlsyn.Parser.parse_query "SELECT g, SUM(v) AS s FROM t GROUP BY g" in
      let _, steps = Sess.run_query sn q in
      Alcotest.(check bool) "still rewritten" true (steps <> []);
      check_proved "not certified" false (Astmatch.Rewrite.steps_proof steps);
      let st = Sess.stats sn in
      Alcotest.(check int) "runtime verification ran" 1
        st.Plancache.Stats.verify_runs;
      Alcotest.(check int) "no static skip" 0
        st.Plancache.Stats.verify_static_skips)

let test_explain_proved_line () =
  P.Level.with_level P.Level.Rewrite (fun () ->
      let sn = setup_grouped () in
      match
        Sess.exec_sql sn
          "EXPLAIN REWRITE SELECT g, SUM(v) AS s FROM t GROUP BY g;"
      with
      | [ Sess.Plan p ] ->
          let has needle =
            let n = String.length needle and h = String.length p in
            let rec go i = i + n <= h && (String.sub p i n = needle || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool) "proved line" true (has "proved: yes")
      | _ -> Alcotest.fail "expected a plan")

let suite =
  [
    Alcotest.test_case "domain: discrete bounds" `Quick test_domain_discrete;
    Alcotest.test_case "domain: meet and disjoint" `Quick test_domain_meet_disjoint;
    Alcotest.test_case "domain: coverage" `Quick test_domain_covers;
    Alcotest.test_case "subsumed: ranges" `Quick test_subsumed_between;
    Alcotest.test_case "unsat and disjoint" `Quick test_unsat_disjoint;
    Alcotest.test_case "or-hull soundness" `Quick test_or_hull_soundness;
    Alcotest.test_case "equivalence transfer" `Quick test_equiv_transfer;
    Alcotest.test_case "differential soundness" `Quick test_differential;
    Alcotest.test_case "partition certificates" `Quick test_partition;
    Alcotest.test_case "verify:Static skips proved plans" `Quick
      test_static_verify_skips;
    Alcotest.test_case "verify:Static verifies unproved plans" `Quick
      test_static_verify_falls_back;
    Alcotest.test_case "EXPLAIN proved line" `Quick test_explain_proved_line;
  ]
