(* Differential testing: all three executors — the vectorized columnar
   engine, the row-at-a-time interpreter (also its per-box fallback), and
   the naive reference evaluator — over a grammar of random queries on
   tiny data. Any pairwise divergence is an engine bug. The generator is
   QCheck-driven (set QCHECK_SEED to reproduce a failure); the count is
   bounded so tier-1 stays fast. *)

module R = Data.Relation
open Helpers

let db = lazy (tiny_db ())

(* -------- query grammar over the tiny schema -------- *)

let dims = [| "grp"; "dim"; "v" |]
let aggs = [| "COUNT(*)"; "COUNT(v)"; "SUM(v)"; "MIN(v)"; "MAX(v)"; "AVG(v)";
              "COUNT(DISTINCT v)"; "SUM(DISTINCT v)" |]
let filters =
  [| "v > 6"; "v IS NOT NULL"; "grp = 'x'"; "k % 2 = 0"; "v BETWEEN 5 AND 15" |]

type qspec = {
  qs_join : bool;           (* join fact with dims on dim = id *)
  qs_dims : int list;
  qs_aggs : int list;       (* empty = plain select *)
  qs_filters : int list;
  qs_distinct : bool;       (* only for plain selects *)
  qs_sets : bool;           (* grouping sets over the dims *)
}

let sql_of q =
  let dim_exprs = List.map (fun i -> dims.(i)) q.qs_dims in
  let select_dims =
    List.mapi (fun j e -> Printf.sprintf "%s AS d%d" e j) dim_exprs
  in
  let select_aggs =
    List.mapi (fun j i -> Printf.sprintf "%s AS a%d" aggs.(i) j) q.qs_aggs
  in
  let items =
    match (select_dims @ select_aggs, q.qs_aggs) with
    | [], _ -> [ "k" ]
    | l, _ -> l
  in
  let from = if q.qs_join then "fact, dims" else "fact" in
  let joinp = if q.qs_join then [ "dim = id" ] else [] in
  let where =
    match joinp @ List.map (fun i -> filters.(i)) q.qs_filters with
    | [] -> ""
    | ps -> " WHERE " ^ String.concat " AND " ps
  in
  let group =
    if q.qs_aggs = [] || dim_exprs = [] then ""
    else if q.qs_sets && List.length dim_exprs >= 2 then
      Printf.sprintf " GROUP BY GROUPING SETS((%s), (%s), ())"
        (String.concat ", " dim_exprs)
        (List.hd dim_exprs)
    else " GROUP BY " ^ String.concat ", " dim_exprs
  in
  let distinct = if q.qs_distinct && q.qs_aggs = [] then "DISTINCT " else "" in
  Printf.sprintf "SELECT %s%s FROM %s%s%s" distinct (String.concat ", " items)
    from where group

let gen_subset arr n =
  QCheck.Gen.(
    list_size (int_range 0 n) (int_bound (Array.length arr - 1))
    >|= List.sort_uniq compare)

let gen_spec =
  QCheck.Gen.(
    let* qs_join = bool in
    let* qs_dims = gen_subset dims 2 in
    let* has_aggs = bool in
    let* qs_aggs =
      if has_aggs then
        list_size (int_range 1 3) (int_bound (Array.length aggs - 1))
        >|= List.sort_uniq compare
      else return []
    in
    let* qs_filters = gen_subset filters 2 in
    let* qs_distinct = bool in
    let* qs_sets = bool in
    return { qs_join; qs_dims; qs_aggs; qs_filters; qs_distinct; qs_sets })

let agree spec =
  let db = Lazy.force db in
  let sql = sql_of spec in
  let g = build (Engine.Db.catalog db) sql in
  let fast = Engine.Exec.with_engine Engine.Exec.Vector (fun () -> Engine.Exec.run db g) in
  let rowed = Engine.Exec.with_engine Engine.Exec.Row (fun () -> Engine.Exec.run db g) in
  let slow = Engine.Reference.run db g in
  if not (R.bag_equal_approx fast slow) then
    QCheck.Test.fail_reportf
      "vector and reference disagree on %s\nvector:\n%s\nreference:\n%s" sql
      (R.to_string fast) (R.to_string slow)
  else if not (R.bag_equal_approx rowed slow) then
    QCheck.Test.fail_reportf
      "row and reference disagree on %s\nrow:\n%s\nreference:\n%s" sql
      (R.to_string rowed) (R.to_string slow)
  else begin
    (* and the unparser must round-trip the graph *)
    let printed = Qgm.Unparse.to_sql g in
    let again =
      try Engine.Exec.run db (build (Engine.Db.catalog db) printed)
      with e ->
        QCheck.Test.fail_reportf "unparse of %s does not rebuild (%s): %s" sql
          (Printexc.to_string e) printed
    in
    if R.bag_equal_approx fast again then true
    else
      QCheck.Test.fail_reportf "unparse changes semantics of %s -> %s" sql
        printed
  end

let prop_engines_agree =
  QCheck.Test.make ~name:"vector and row engines match reference" ~count:500
    (QCheck.make ~print:sql_of gen_spec)
    agree

(* a few hand-picked shapes the generator may under-sample *)
let fixed_cases =
  [
    "SELECT k FROM fact, dims WHERE dim = id AND v > 6";
    "SELECT grp, COUNT(*) AS c FROM fact GROUP BY grp";
    "SELECT COUNT(*) AS c FROM fact WHERE v > 1000";
    "SELECT DISTINCT grp, dim FROM fact";
    "SELECT region, SUM(v) AS s FROM fact, dims WHERE dim = id GROUP BY region";
    "SELECT grp, dim, COUNT(*) AS c FROM fact GROUP BY GROUPING SETS((grp, dim), (grp), ())";
    "SELECT k, (SELECT COUNT(*) FROM dims) AS n FROM fact";
    "SELECT grp, COUNT(*) AS c FROM fact GROUP BY grp HAVING COUNT(*) > 2";
  ]

let test_fixed () =
  let db = Lazy.force db in
  List.iter
    (fun sql ->
      let g = build (Engine.Db.catalog db) sql in
      let slow = Engine.Reference.run db g in
      List.iter
        (fun e ->
          Alcotest.(check bool)
            (Printf.sprintf "%s [%s]" sql (Engine.Exec.engine_to_string e))
            true
            (R.bag_equal_approx
               (Engine.Exec.with_engine e (fun () -> Engine.Exec.run db g))
               slow))
        [ Engine.Exec.Vector; Engine.Exec.Row ])
    fixed_cases

let suite =
  [
    QCheck_alcotest.to_alcotest prop_engines_agree;
    Alcotest.test_case "fixed shapes" `Quick test_fixed;
  ]
