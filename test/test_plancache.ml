(* The rewrite-planning subsystem: plan-cache hits perform zero matching
   work, epoch invalidation never serves a stale plan, the candidate index
   agrees with the store's freshness bookkeeping, LRU eviction is bounded,
   and an interleaved DML/DDL workload is result-identical to a
   rewrite-off session. *)

module Sess = Mvstore.Session
module Store = Mvstore.Store
module R = Data.Relation
module P = Plancache

let script sn sql = ignore (Sess.exec_sql sn sql)
let parse = Sqlsyn.Parser.parse_query
let run sn sql = Sess.run_query sn (parse sql)

let grouped_session () =
  let sn = Sess.create () in
  script sn
    "CREATE TABLE t (g INT NOT NULL, v INT NOT NULL); \
     INSERT INTO t VALUES (1, 10), (1, 20), (2, 5); \
     CREATE SUMMARY TABLE m AS SELECT g, SUM(v) AS s, COUNT(*) AS c FROM t \
     GROUP BY g;";
  sn

(* The index must list exactly the store's fresh (rewritable) entries. *)
let check_index_agrees what sn =
  let fresh =
    List.map
      (fun (mv : Astmatch.Rewrite.mv) -> mv.mv_name)
      (Store.rewritable (Sess.store sn))
  in
  let indexed = P.Candidates.names (P.Candidates.build (Store.rewritable (Sess.store sn))) in
  Alcotest.(check (list string)) (what ^ ": index = rewritable") fresh indexed

(* ---------------- warm cache: zero matching work ---------------- *)

let test_warm_cache_no_matching () =
  let sn = grouped_session () in
  let q = "SELECT g, SUM(v) AS s FROM t GROUP BY g" in
  let _, steps1 = run sn q in
  Alcotest.(check bool) "first run rewritten" true (steps1 <> []);
  let calls_before = Astmatch.Patterns.match_count () in
  let rel2, steps2 = run sn q in
  Alcotest.(check bool) "second run rewritten" true (steps2 <> []);
  Alcotest.(check int) "zero match_boxes calls when warm" calls_before
    (Astmatch.Patterns.match_count ());
  let st = Sess.stats sn in
  Alcotest.(check bool) "cache hit recorded" true (st.P.Stats.hits >= 1);
  Sess.set_rewrite sn false;
  let direct, _ = run sn q in
  Alcotest.(check bool) "cached plan correct" true
    (R.bag_equal_approx direct rel2)

let test_negative_decision_cached () =
  let sn = grouped_session () in
  (* MIN is not derivable from a SUM/COUNT summary: no rewrite *)
  let q = "SELECT g, MIN(v) AS mn FROM t GROUP BY g" in
  let _, steps1 = run sn q in
  Alcotest.(check bool) "not rewritten" true (steps1 = []);
  let calls_before = Astmatch.Patterns.match_count () in
  let _, steps2 = run sn q in
  Alcotest.(check bool) "still not rewritten" true (steps2 = []);
  Alcotest.(check int) "negative entry also skips matching" calls_before
    (Astmatch.Patterns.match_count ())

(* ---------------- candidate filtering ---------------- *)

let test_footprint_filter () =
  let sn = grouped_session () in
  script sn
    "CREATE TABLE u (x INT NOT NULL); INSERT INTO u VALUES (1), (2);";
  let st0 = Sess.stats sn in
  (* query over u only: the MV over t is not footprint-eligible *)
  let _, steps = run sn "SELECT x, COUNT(*) AS c FROM u GROUP BY x" in
  Alcotest.(check bool) "no rewrite" true (steps = []);
  let st1 = Sess.stats sn in
  Alcotest.(check int) "MV filtered, not attempted" (st0.P.Stats.filtered + 1)
    st1.P.Stats.filtered;
  Alcotest.(check int) "nothing attempted" st0.P.Stats.attempted
    st1.P.Stats.attempted

let test_dedup_bit_filter () =
  let sn = grouped_session () in
  let st0 = Sess.stats sn in
  (* plain scan: a grouped summary can never answer it *)
  let _, steps = run sn "SELECT g, v FROM t" in
  Alcotest.(check bool) "no rewrite" true (steps = []);
  let st1 = Sess.stats sn in
  Alcotest.(check int) "grouped MV filtered for scan query"
    (st0.P.Stats.filtered + 1) st1.P.Stats.filtered;
  (* a DISTINCT query has a dedup path: the grouped MV must be eligible *)
  let _ = run sn "SELECT DISTINCT g FROM t" in
  let st2 = Sess.stats sn in
  Alcotest.(check bool) "grouped MV attempted for DISTINCT query" true
    (st2.P.Stats.attempted > st1.P.Stats.attempted)

let test_candidates_unit () =
  let sn = grouped_session () in
  let cat = Engine.Db.catalog (Sess.db sn) in
  let mvs = Store.rewritable (Sess.store sn) in
  let idx = P.Candidates.build mvs in
  Alcotest.(check int) "one candidate" 1 (P.Candidates.size idx);
  let build sql = Qgm.Builder.build cat (parse sql) in
  let g_ok = build "SELECT g, SUM(v) AS s FROM t GROUP BY g" in
  Alcotest.(check (list string)) "footprint" [ "t" ] (P.Candidates.footprint g_ok);
  Alcotest.(check bool) "grouped query dedups" true (P.Candidates.dedups g_ok);
  let kept, skipped = P.Candidates.eligible idx cat g_ok in
  Alcotest.(check int) "kept for grouped query over t" 1 (List.length kept);
  Alcotest.(check int) "none skipped" 0 (List.length skipped);
  let g_scan = build "SELECT g FROM t" in
  Alcotest.(check bool) "scan does not dedup" false (P.Candidates.dedups g_scan);
  let kept, skipped = P.Candidates.eligible idx cat g_scan in
  Alcotest.(check int) "none kept for plain scan" 0 (List.length kept);
  Alcotest.(check int) "one skipped" 1 (List.length skipped)

let test_ri_extra_table_not_filtered () =
  (* an MV joining a second table through a declared FK must stay eligible
     for a query over the fact table alone (lossless extra join) *)
  let sn = Sess.create () in
  script sn
    "CREATE TABLE dims (id INT NOT NULL, label VARCHAR, PRIMARY KEY (id)); \
     CREATE TABLE fact (k INT NOT NULL, dim INT NOT NULL, v INT NOT NULL, \
     PRIMARY KEY (k), FOREIGN KEY (dim) REFERENCES dims (id));";
  let cat = Engine.Db.catalog (Sess.db sn) in
  let build sql = Qgm.Builder.build cat (parse sql) in
  let mv_graph =
    build
      "SELECT dim, SUM(v) AS s FROM fact, dims WHERE dim = id GROUP BY dim"
  in
  let idx =
    P.Candidates.build
      [ { Astmatch.Rewrite.mv_name = "mj"; mv_graph; mv_version = 0 } ]
  in
  let q = build "SELECT dim, SUM(v) AS s FROM fact GROUP BY dim" in
  let kept, _ = P.Candidates.eligible idx cat q in
  Alcotest.(check int) "RI-joined extra table stays eligible" 1
    (List.length kept)

(* ---------------- epoch invalidation ---------------- *)

let test_invalidation_insert_refresh () =
  let sn = Sess.create () in
  let plain = Sess.create ~rewrite:false () in
  let both sql =
    script sn sql;
    script plain sql
  in
  both
    "CREATE TABLE t (g INT NOT NULL, v INT NOT NULL); \
     INSERT INTO t VALUES (1, 10), (2, 5); \
     CREATE SUMMARY TABLE m AS SELECT g, SUM(v) AS s FROM t GROUP BY g \
     HAVING SUM(v) > 5;";
  let q = "SELECT g, SUM(v) AS s FROM t GROUP BY g HAVING SUM(v) > 5" in
  let compare_against_plain what =
    let via, _ = run sn q in
    let direct, _ = run plain q in
    Alcotest.(check bool) (what ^ ": results equal rewrite-off") true
      (R.bag_equal_approx via direct)
  in
  (* warm the cache *)
  let _, steps = run sn q in
  Alcotest.(check bool) "rewritten while fresh" true (steps <> []);
  let _, steps = run sn q in
  Alcotest.(check bool) "served warm" true (steps <> []);
  check_index_agrees "fresh" sn;
  let hits0 = (Sess.stats sn).P.Stats.hits in
  Alcotest.(check bool) "warm hit counted" true (hits0 >= 1);
  (* the HAVING summary is not incrementally maintainable: INSERT makes it
     stale AND must drop the cached plan *)
  both "INSERT INTO t VALUES (1, 100);";
  let inval0 = (Sess.stats sn).P.Stats.invalidated in
  let _, steps = run sn q in
  Alcotest.(check bool) "stale MV not used after insert" true (steps = []);
  Alcotest.(check bool) "cached plan was invalidated, not served" true
    ((Sess.stats sn).P.Stats.invalidated > inval0
    || (Sess.stats sn).P.Stats.misses > 0);
  compare_against_plain "after insert";
  check_index_agrees "stale" sn;
  Alcotest.(check int) "stale MV out of the index" 0
    (P.Candidates.size
       (P.Candidates.build (Store.rewritable (Sess.store sn))));
  (* refresh restores freshness; the plan must be re-derived *)
  both "REFRESH SUMMARY TABLE m;";
  let _, steps = run sn q in
  Alcotest.(check bool) "re-derived after refresh" true (steps <> []);
  compare_against_plain "after refresh";
  check_index_agrees "refreshed" sn

let test_invalidation_drop () =
  let sn = grouped_session () in
  let q = "SELECT g, SUM(v) AS s FROM t GROUP BY g" in
  let _, steps = run sn q in
  Alcotest.(check bool) "rewritten" true (steps <> []);
  script sn "DROP SUMMARY TABLE m;";
  let rel, steps = run sn q in
  Alcotest.(check bool) "dropped MV no longer used" true (steps = []);
  Sess.set_rewrite sn false;
  let direct, _ = run sn q in
  Alcotest.(check bool) "results correct after drop" true
    (R.bag_equal_approx direct rel);
  check_index_agrees "after drop" sn

let test_incremental_insert_still_rewrites () =
  (* an incrementally-maintained summary stays fresh across INSERT; the
     cache entry is invalidated (epoch moved) but re-planning must find the
     rewrite again and see the refreshed contents *)
  let sn = grouped_session () in
  let q = "SELECT g, SUM(v) AS s FROM t GROUP BY g" in
  let _, steps = run sn q in
  Alcotest.(check bool) "rewritten before insert" true (steps <> []);
  script sn "INSERT INTO t VALUES (3, 7);";
  let rel, steps = run sn q in
  Alcotest.(check bool) "rewritten after incremental insert" true (steps <> []);
  Sess.set_rewrite sn false;
  let direct, _ = run sn q in
  Alcotest.(check bool) "incrementally maintained contents" true
    (R.bag_equal_approx direct rel)

let test_ddl_bumps_epoch () =
  let sn = grouped_session () in
  let e0 = Store.epoch (Sess.store sn) in
  script sn "CREATE TABLE z (a INT NOT NULL);";
  Alcotest.(check bool) "CREATE TABLE bumps the epoch" true
    (Store.epoch (Sess.store sn) > e0)

(* ---------------- LRU bound ---------------- *)

let test_lru_eviction () =
  let sn = Sess.create ~plan_capacity:2 () in
  script sn
    "CREATE TABLE t (g INT NOT NULL, v INT NOT NULL); \
     INSERT INTO t VALUES (1, 10);";
  ignore (run sn "SELECT g FROM t");
  ignore (run sn "SELECT v FROM t");
  ignore (run sn "SELECT g, v FROM t");
  let st = Sess.stats sn in
  Alcotest.(check bool) "eviction happened" true (st.P.Stats.evicted >= 1);
  Alcotest.(check int) "cache stays bounded" 2
    (P.Planner.cache_length (Sess.planner sn));
  (* the evicted (least recently used) query re-plans as a miss *)
  let misses0 = st.P.Stats.misses in
  ignore (run sn "SELECT g FROM t");
  Alcotest.(check int) "evicted entry is a miss again" (misses0 + 1)
    (Sess.stats sn).P.Stats.misses

(* ---------------- differential: interleaved workload ---------------- *)

let test_differential_interleaved () =
  let rw = Sess.create () in
  let plain = Sess.create ~rewrite:false () in
  let both sql =
    script rw sql;
    script plain sql;
    check_index_agrees "interleaved" rw
  in
  let queries =
    [
      "SELECT g, SUM(v) AS s FROM t GROUP BY g";
      "SELECT g, COUNT(*) AS c FROM t GROUP BY g";
      "SELECT g, SUM(v) AS s FROM t GROUP BY g HAVING SUM(v) > 10";
      "SELECT DISTINCT g FROM t";
      "SELECT g, v FROM t";
    ]
  in
  let check_all what =
    List.iter
      (fun q ->
        let via, _ = run rw q in
        let direct, _ = run plain q in
        Alcotest.(check bool)
          (Printf.sprintf "%s: %s" what q)
          true
          (R.bag_equal_approx via direct))
      queries
  in
  both "CREATE TABLE t (g INT NOT NULL, v INT NOT NULL);";
  both "INSERT INTO t VALUES (1, 10), (1, 20), (2, 5), (3, 8);";
  both
    "CREATE SUMMARY TABLE m1 AS SELECT g, SUM(v) AS s, COUNT(*) AS c FROM t \
     GROUP BY g;";
  both
    "CREATE SUMMARY TABLE m2 AS SELECT g, SUM(v) AS s FROM t GROUP BY g \
     HAVING SUM(v) > 10;";
  check_all "after define";
  check_all "warm";
  both "INSERT INTO t VALUES (2, 40), (4, 1);";
  check_all "after insert";
  both "DELETE FROM t WHERE g = 1;";
  check_all "after delete";
  both "REFRESH SUMMARY TABLE m2;";
  check_all "after refresh";
  both "DROP SUMMARY TABLE m1;";
  check_all "after drop";
  both "INSERT INTO t VALUES (5, 9);";
  check_all "final"

let suite =
  [
    Alcotest.test_case "warm cache: zero matching" `Quick
      test_warm_cache_no_matching;
    Alcotest.test_case "negative decision cached" `Quick
      test_negative_decision_cached;
    Alcotest.test_case "footprint filter" `Quick test_footprint_filter;
    Alcotest.test_case "dedup-bit filter" `Quick test_dedup_bit_filter;
    Alcotest.test_case "candidates unit" `Quick test_candidates_unit;
    Alcotest.test_case "RI extra table eligible" `Quick
      test_ri_extra_table_not_filtered;
    Alcotest.test_case "invalidation: insert/refresh" `Quick
      test_invalidation_insert_refresh;
    Alcotest.test_case "invalidation: drop" `Quick test_invalidation_drop;
    Alcotest.test_case "incremental insert re-plans" `Quick
      test_incremental_insert_still_rewrites;
    Alcotest.test_case "DDL bumps epoch" `Quick test_ddl_bumps_epoch;
    Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
    Alcotest.test_case "differential interleaved" `Quick
      test_differential_interleaved;
  ]
