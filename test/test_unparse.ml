(* QGM -> SQL: rendered queries must re-elaborate to semantically identical
   graphs (checked by executing both). *)

module R = Data.Relation
open Helpers

let star_db =
  lazy
    (Engine.Db.of_tables
       (Workload.Star_schema.catalog ())
       (Workload.Star_schema.generate
          {
            Workload.Star_schema.default_params with
            n_custs = 3;
            trans_per_acct_year = 15;
          }))

let roundtrip sql =
  let db = Lazy.force star_db in
  let cat = Engine.Db.catalog db in
  let g = build cat sql in
  let printed = Qgm.Unparse.to_sql g in
  let g2 = build cat printed in
  let r1 = Engine.Exec.run db g in
  let r2 = Engine.Exec.run db g2 in
  Alcotest.(check bool)
    (Printf.sprintf "roundtrip of %s (printed: %s)" sql printed)
    true
    (R.bag_equal_approx r1 r2)

let test_plain () = roundtrip "select tid, qty * price as v from Trans where disc > 0.1"

let test_join () =
  roundtrip
    "select tid, pgname from Trans, PGroup where fpgid = pgid and price > 50"

let test_aggregate () =
  roundtrip
    "select flid, year(date) as y, count(*) as c, sum(qty) as q from Trans \
     group by flid, year(date) having count(*) > 2"

let test_grouping_sets () =
  roundtrip
    "select flid, year(date) as y, count(*) as c from Trans group by \
     grouping sets((flid, year(date)), (flid), ())"

let test_nested () =
  roundtrip
    "select tcnt, count(*) as n from (select year(date) as y, count(*) as \
     tcnt from Trans group by year(date)) as t group by tcnt"

let test_scalar_sub () =
  roundtrip
    "select flid, count(*) as c, (select count(*) from Trans) as tot from \
     Trans group by flid"

let test_self_join () =
  roundtrip
    "select t1.tid as a, t2.tid as b from Trans as t1, Trans as t2 where \
     t1.tid = t2.tid and t1.qty > 3"

let test_order_limit () =
  let db = Lazy.force star_db in
  let cat = Engine.Db.catalog db in
  let g = build cat "select tid from Trans order by tid desc limit 4" in
  let printed = Qgm.Unparse.to_sql g in
  let g2 = build cat printed in
  (* ordered comparison: row lists must be identical *)
  Alcotest.(check (list (list string)))
    "ordered rows identical"
    (List.map (List.map Data.Value.to_string)
       (List.map Array.to_list (R.rows (Engine.Exec.run db g))))
    (List.map (List.map Data.Value.to_string)
       (List.map Array.to_list (R.rows (Engine.Exec.run db g2))))

let test_rewritten_graphs_roundtrip () =
  (* every positive paper figure's REWRITTEN graph must unparse to SQL that
     re-executes identically *)
  let db = ref (Lazy.force star_db) in
  List.iter
    (fun (c : Workload.Paper_queries.case) ->
      if c.expect_rewrite then begin
        let cat = Engine.Db.catalog !db in
        let qg = build cat c.query in
        let ag = build cat c.ast in
        let rel = Engine.Exec.run !db ag in
        let cols = Qgm.Typing.infer_outputs cat ag in
        let cat2 =
          if Catalog.mem_table cat c.ast_name then cat
          else
            Catalog.add_table cat
              {
                Catalog.tbl_name = c.ast_name;
                tbl_cols =
                  List.map
                    (fun (n, ty) ->
                      { Catalog.col_name = n; col_ty = ty; nullable = true })
                    cols;
                primary_key = [];
                unique_keys = [];
                foreign_keys = [];
              }
        in
        db := Engine.Db.put (Engine.Db.with_catalog !db cat2) c.ast_name rel;
        let cat2 = Engine.Db.catalog !db in
        let sites = Astmatch.Navigator.find_matches cat2 ~query:qg ~ast:ag in
        match sites with
        | [] -> Alcotest.fail (c.name ^ ": expected a match")
        | { Astmatch.Navigator.site_box; site_result; _ } :: _ ->
            let g' =
              Astmatch.Rewrite.apply ~query:qg ~target:site_box
                ~result:site_result ~mv_table:c.ast_name
                ~mv_cols:(Array.to_list (R.columns rel))
            in
            let printed = Qgm.Unparse.to_sql g' in
            let g2 = build cat2 printed in
            Alcotest.(check bool)
              (Printf.sprintf "%s rewritten SQL roundtrips (%s)" c.name printed)
              true
              (R.bag_equal_approx (Engine.Exec.run !db g')
                 (Engine.Exec.run !db g2))
      end)
    Workload.Paper_queries.cases

let suite =
  [
    Alcotest.test_case "plain select" `Quick test_plain;
    Alcotest.test_case "join" `Quick test_join;
    Alcotest.test_case "aggregate block" `Quick test_aggregate;
    Alcotest.test_case "grouping sets" `Quick test_grouping_sets;
    Alcotest.test_case "nested blocks" `Quick test_nested;
    Alcotest.test_case "scalar subquery" `Quick test_scalar_sub;
    Alcotest.test_case "self join" `Quick test_self_join;
    Alcotest.test_case "order/limit" `Quick test_order_limit;
    Alcotest.test_case "rewritten figures roundtrip" `Quick
      test_rewritten_graphs_roundtrip;
  ]
