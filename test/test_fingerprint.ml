(* Canonical QGM fingerprints: what must collide (alpha-equivalent plans)
   and what must not (anything observable: outputs, their order, DISTINCT,
   tables, constants, grouping, presentation). *)

open Helpers
module F = Qgm.Fingerprint

let cat = tiny_catalog ()
let build sql = Qgm.Builder.build cat (Sqlsyn.Parser.parse_query sql)
let fp sql = F.of_graph (build sql)

let same a b () =
  Alcotest.(check string) (a ^ " == " ^ b) (fp a) (fp b)

let diff a b () =
  Alcotest.(check bool) (a ^ " <> " ^ b) true (fp a <> fp b)

let has hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_stable () =
  (* same graph, same digest, and canonical text mentions the base table *)
  let g = build "SELECT k, v FROM fact WHERE v > 1" in
  Alcotest.(check string) "deterministic" (F.of_graph g) (F.of_graph g);
  let c = F.canonical g in
  Alcotest.(check bool) "mentions base table" true (has c "(base fact")

let suite =
  [
    Alcotest.test_case "deterministic" `Quick test_stable;
    Alcotest.test_case "whitespace/case-insensitive" `Quick
      (same "SELECT k, v FROM fact WHERE v > 1"
         "select k,   v from FACT where v > 1");
    Alcotest.test_case "predicate order-insensitive" `Quick
      (same "SELECT k FROM fact WHERE v > 1 AND k < 5"
         "SELECT k FROM fact WHERE k < 5 AND v > 1");
    Alcotest.test_case "alias-insensitive" `Quick
      (same "SELECT f.k FROM fact f" "SELECT g2.k FROM fact g2");
    Alcotest.test_case "join order insensitive predicates" `Quick
      (same "SELECT k FROM fact WHERE v = 1 AND grp = 'a'"
         "SELECT k FROM fact WHERE grp = 'a' AND v = 1");
    Alcotest.test_case "output order matters" `Quick
      (diff "SELECT k, v FROM fact" "SELECT v, k FROM fact");
    Alcotest.test_case "distinct matters" `Quick
      (diff "SELECT grp FROM fact" "SELECT DISTINCT grp FROM fact");
    Alcotest.test_case "table matters" `Quick
      (diff "SELECT id FROM dims" "SELECT k FROM fact");
    Alcotest.test_case "constant matters" `Quick
      (diff "SELECT k FROM fact WHERE v > 1" "SELECT k FROM fact WHERE v > 2");
    Alcotest.test_case "grouping matters" `Quick
      (diff "SELECT grp, COUNT(*) AS c FROM fact GROUP BY grp"
         "SELECT grp, COUNT(*) AS c FROM fact GROUP BY grp, v");
    Alcotest.test_case "presentation matters" `Quick
      (diff "SELECT k FROM fact ORDER BY k" "SELECT k FROM fact ORDER BY k DESC");
    Alcotest.test_case "limit matters" `Quick
      (diff "SELECT k FROM fact LIMIT 5" "SELECT k FROM fact LIMIT 6");
  ]
