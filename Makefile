# Convenience entry points; everything is plain dune underneath.

.PHONY: all build test bench smoke gate baseline clean

all: build

build:
	dune build

test:
	dune runtest

# Full bench run (ASTRW_SCALE=10 for the paper-scale numbers).
bench:
	dune exec bench/main.exe

# The CI gate: smoke-scale bench diffed against bench/baseline.json.
smoke gate:
	scripts/bench_gate.sh

# Regenerate the perf baseline intentionally (then commit it).
baseline:
	scripts/bench_gate.sh --update

clean:
	dune clean
