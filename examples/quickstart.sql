-- Quickstart: a summary table that transparently answers rollup queries.
-- Run with:   astql run examples/quickstart.sql
-- Lint with:  astql lint examples/quickstart.sql

CREATE TABLE sales (
  region  VARCHAR NOT NULL,
  product VARCHAR NOT NULL,
  qty     INT NOT NULL,
  price   INT NOT NULL
);

INSERT INTO sales VALUES
  ('east', 'widget', 10, 5),
  ('east', 'gadget',  3, 20),
  ('west', 'widget',  7, 5),
  ('west', 'sprocket', 2, 50);

-- Fine-grained summary: one row per (region, product).  COUNT(*) makes the
-- table usable for AVG derivation and further re-aggregation (paper sec. 4).
CREATE SUMMARY TABLE sales_by_region_product AS
SELECT region, product, SUM(qty) AS total_qty, SUM(qty * price) AS revenue,
       COUNT(*) AS cnt
FROM sales
GROUP BY region, product;

-- Answered from the summary table directly.
SELECT region, product, SUM(qty) AS total_qty
FROM sales
GROUP BY region, product;

-- Coarser rollup: answered by re-aggregating the summary table.
EXPLAIN REWRITE SELECT region, SUM(qty * price) AS revenue
FROM sales
GROUP BY region;

SELECT region, SUM(qty * price) AS revenue
FROM sales
GROUP BY region;
