-- Summary-table lint showcase: each definition below is legal but trips a
-- definition-time diagnostic (L-code).  Nothing here is a hard error —
--   astql lint examples/lint_showcase.sql
-- exits 0 and prints the warnings (use --strict to make them fatal).

CREATE TABLE orders (
  region  VARCHAR NOT NULL,
  channel VARCHAR,          -- nullable: ROLLUP over it is ambiguous (L104)
  amount  INT NOT NULL
);

-- L101: AVG stored without a count — the average cannot be re-aggregated
-- to coarser groupings, so this table only serves exact-grouping matches.
CREATE SUMMARY TABLE avg_only AS
SELECT region, AVG(amount) AS avg_amount
FROM orders
GROUP BY region;

-- L102: DISTINCT aggregates are not decomposable; COUNT(DISTINCT) blocks
-- re-aggregation entirely.  L103 too: no COUNT(*) column.
CREATE SUMMARY TABLE distinct_agg AS
SELECT region, COUNT(DISTINCT channel) AS channels
FROM orders
GROUP BY region;

-- L104: the rollup folds a nullable column, so a stored NULL is ambiguous
-- between "subtotal row" and "channel was NULL" (paper sec. 5.1 keeps the
-- strata apart with grouping indicators).
CREATE SUMMARY TABLE rollup_nullable AS
SELECT region, channel, SUM(amount) AS total, COUNT(*) AS cnt
FROM orders
GROUP BY ROLLUP(region, channel);

-- L105: same base tables and grouping as avg_only — redundant footprint.
CREATE SUMMARY TABLE avg_only_twin AS
SELECT region, SUM(amount) AS total, COUNT(*) AS cnt
FROM orders
GROUP BY region;
