-- Grouping sets (paper sec. 5): one summary table holding a ROLLUP lattice
-- answers queries at several granularities.
-- Run with:   astql run examples/grouping_sets.sql
-- Lint with:  astql lint examples/grouping_sets.sql

CREATE TABLE trans (
  storeid INT NOT NULL,
  prodid  INT NOT NULL,
  qty     INT NOT NULL
);

INSERT INTO trans VALUES
  (1, 100, 4), (1, 101, 2), (2, 100, 9), (2, 102, 1), (3, 101, 6);

-- The rollup summary covers (storeid, prodid), (storeid) and () in one
-- table; cuboid slicing picks the right stratum per query.
CREATE SUMMARY TABLE trans_rollup AS
SELECT storeid, prodid, SUM(qty) AS total, COUNT(*) AS cnt
FROM trans
GROUP BY ROLLUP(storeid, prodid);

-- Served from the (storeid, prodid) stratum.
SELECT storeid, prodid, SUM(qty) AS total
FROM trans
GROUP BY storeid, prodid;

-- Served from the (storeid) stratum — no re-aggregation needed.
EXPLAIN REWRITE SELECT storeid, SUM(qty) AS total
FROM trans
GROUP BY storeid;

SELECT storeid, SUM(qty) AS total
FROM trans
GROUP BY storeid;

-- A grouping-sets query matched against the lattice.
SELECT storeid, prodid, SUM(qty) AS total
FROM trans
GROUP BY GROUPING SETS ((storeid, prodid), (storeid));
